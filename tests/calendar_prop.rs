//! Property tests for the next-activity [`Calendar`] behind the
//! event-driven cycle loop.
//!
//! The calendar folds arbitrary mixes of wake sources (`stop_before` — the
//! clock must land *strictly before* them so the waking cycle executes for
//! real) and boundaries (`land_on` — the run loop may observe them exactly,
//! never pass them) into one jump length. These properties drive it with
//! random calendars and prove the fold can never overshoot: a single
//! overshoot of a wake source is a skipped fill or wakeup, i.e. a silent
//! bit-for-bit divergence the differential tests could only catch if a
//! workload happened to hit that alignment.

use proptest::prelude::*;
use smt_sim::core::Calendar;

/// Build a calendar from random source/boundary lists, in random
/// interleaving order (registration order must not matter).
fn build(sources: &[u64], opt_sources: &[Option<u64>], boundaries: &[u64]) -> Calendar {
    let mut cal = Calendar::new();
    for &w in sources {
        cal.stop_before(w);
    }
    for &w in opt_sources {
        cal.stop_before_opt(w);
    }
    for &b in boundaries {
        cal.land_on(b);
    }
    cal
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// The fundamental contract: wherever the jump lands, it is strictly
    /// below every registered wake source and at or below every boundary.
    /// `now` itself may already violate a bound (a source due this very
    /// cycle) — then the jump must be zero.
    #[test]
    fn jump_never_reaches_a_wake_source_or_passes_a_boundary(
        now in 0u64..1_000_000,
        sources in proptest::collection::vec(0u64..2_000_000, 0..8),
        opt_sources in proptest::collection::vec(
            proptest::option::of(0u64..2_000_000), 0..4),
        boundaries in proptest::collection::vec(0u64..2_000_000, 0..4),
    ) {
        let cal = build(&sources, &opt_sources, &boundaries);
        let landed = now + cal.skip_from(now);
        let all_sources =
            sources.iter().chain(opt_sources.iter().flatten());
        for &w in all_sources {
            if w > now {
                prop_assert!(
                    landed < w,
                    "jumped from {now} to {landed}, on/past wake source {w}"
                );
            }
        }
        for &b in &boundaries {
            if b >= now {
                prop_assert!(
                    landed <= b,
                    "jumped from {now} to {landed}, past boundary {b}"
                );
            }
        }
    }

    /// The jump is maximal, not merely safe: it lands exactly on the
    /// tightest bound (nearest source minus one, or nearest boundary,
    /// whichever is smaller). A conservative fold that under-jumps would
    /// pass the safety property but erode the speedup.
    #[test]
    fn jump_is_exactly_the_tightest_bound(
        now in 0u64..1_000_000,
        sources in proptest::collection::vec(0u64..2_000_000, 1..8),
        boundaries in proptest::collection::vec(0u64..2_000_000, 0..4),
    ) {
        let cal = build(&sources, &[], &boundaries);
        let src_bound = sources.iter().map(|w| w.saturating_sub(1)).min();
        let bnd_bound = boundaries.iter().copied().min();
        let tightest = match (src_bound, bnd_bound) {
            (Some(s), Some(b)) => s.min(b),
            (Some(s), None) => s,
            (None, Some(b)) => b,
            (None, None) => unreachable!("at least one source is generated"),
        };
        prop_assert_eq!(cal.skip_from(now), tightest.saturating_sub(now));
    }

    /// A calendar is bounded exactly when something registered. `None`
    /// optional sources register nothing: the caller must fall back to a
    /// finite stride for a wedged machine, never jump to the end of time.
    #[test]
    fn boundedness_tracks_registration(
        opt_sources in proptest::collection::vec(
            proptest::option::of(0u64..2_000_000), 0..6),
    ) {
        let cal = build(&[], &opt_sources, &[]);
        prop_assert_eq!(
            cal.is_bounded(),
            opt_sources.iter().any(|s| s.is_some())
        );
    }

    /// Sources due now or already past pin the jump to zero: the current
    /// cycle must execute for real.
    #[test]
    fn due_or_past_sources_pin_the_jump_to_zero(
        now in 1u64..1_000_000,
        wake in 0u64..1_000_000,
        extra in proptest::collection::vec(0u64..2_000_000, 0..4),
    ) {
        let wake = wake.min(now + 1); // due this cycle or earlier
        let mut cal = build(&extra, &[], &[]);
        cal.stop_before(wake);
        prop_assert_eq!(cal.skip_from(now), 0);
    }
}
