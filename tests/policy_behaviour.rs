//! Cross-crate integration tests: the paper's qualitative claims must hold
//! on the synthetic SPEC models end-to-end.

use smt_sim::core::DispatchPolicy;
use smt_sim::sweep::{run_spec, RunSpec};

fn ipc(benches: &[&str], iq: usize, policy: DispatchPolicy) -> f64 {
    run_spec(&RunSpec::new(benches, iq, policy, 8_000, 1)).ipc
}

#[test]
fn two_op_block_loses_on_two_threads_at_64_entries() {
    // Paper §3: "workloads with 2 threads experience performance
    // degradations compared to the traditional scheduler for all sizes".
    let trad = ipc(&["equake", "lucas"], 64, DispatchPolicy::Traditional);
    let blocked = ipc(&["equake", "lucas"], 64, DispatchPolicy::TwoOpBlock);
    assert!(
        blocked < trad,
        "2OP_BLOCK ({blocked:.3}) must trail the traditional scheduler ({trad:.3}) on a \
         2-thread memory-bound mix"
    );
}

#[test]
fn ooo_dispatch_recovers_two_op_block_losses() {
    // Paper §5: OOO dispatch beats basic 2OP_BLOCK significantly for all
    // IQ sizes on 2-thread workloads.
    for iq in [32, 48, 64] {
        let blocked = ipc(&["equake", "gcc"], iq, DispatchPolicy::TwoOpBlock);
        let ooo = ipc(&["equake", "gcc"], iq, DispatchPolicy::TwoOpBlockOoo);
        assert!(
            ooo > blocked,
            "IQ={iq}: OOO dispatch ({ooo:.3}) must beat plain 2OP_BLOCK ({blocked:.3})"
        );
    }
}

#[test]
fn two_op_block_wins_at_small_queues_with_four_threads() {
    // Paper Figure 1: with abundant TLP and a small queue, keeping
    // 2-non-ready instructions out of the IQ pays off.
    let benches = ["parser", "equake", "mesa", "vortex"];
    let trad = ipc(&benches, 32, DispatchPolicy::Traditional);
    let blocked = ipc(&benches, 32, DispatchPolicy::TwoOpBlock);
    assert!(
        blocked > trad,
        "4 threads at a 32-entry IQ: 2OP_BLOCK ({blocked:.3}) should beat traditional ({trad:.3})"
    );
}

#[test]
fn traditional_catches_up_at_large_queues() {
    // Paper Figure 1: 2OP_BLOCK does not scale with IQ size.
    let benches = ["parser", "equake", "mesa", "vortex"];
    let trad = ipc(&benches, 128, DispatchPolicy::Traditional);
    let blocked = ipc(&benches, 128, DispatchPolicy::TwoOpBlock);
    assert!(
        trad > blocked,
        "at 128 entries the traditional scheduler ({trad:.3}) should beat 2OP_BLOCK ({blocked:.3})"
    );
}

#[test]
fn stall_fraction_decreases_with_thread_count() {
    // Paper §3: the all-thread NDI stall fraction shrinks as TLP grows
    // (43% / 17% / 7% for 2/3/4 threads at 64 entries).
    let two =
        run_spec(&RunSpec::new(&["equake", "lucas"], 64, DispatchPolicy::TwoOpBlock, 8_000, 1))
            .all_stall_frac;
    let four = run_spec(&RunSpec::new(
        &["equake", "lucas", "mesa", "vortex"],
        64,
        DispatchPolicy::TwoOpBlock,
        8_000,
        1,
    ))
    .all_stall_frac;
    assert!(two > four, "2-thread stall fraction ({two:.3}) should exceed 4-thread ({four:.3})");
}

#[test]
fn ooo_dispatch_slashes_all_thread_stalls() {
    // Paper §5: 43% → 0.2% on 2-thread workloads.
    let blocked =
        run_spec(&RunSpec::new(&["equake", "lucas"], 64, DispatchPolicy::TwoOpBlock, 8_000, 1))
            .all_stall_frac;
    let ooo =
        run_spec(&RunSpec::new(&["equake", "lucas"], 64, DispatchPolicy::TwoOpBlockOoo, 8_000, 1))
            .all_stall_frac;
    assert!(
        ooo < blocked / 2.0,
        "OOO dispatch should cut the all-stall fraction by far more than half: \
         {blocked:.3} -> {ooo:.3}"
    );
}

#[test]
fn most_piled_up_instructions_are_hdis() {
    // Paper §4: "almost 90% of instructions piled up behind the NDIs can be
    // classified as HDIs" (measured on the basic 2OP_BLOCK design).
    let r = run_spec(&RunSpec::new(&["equake", "gcc"], 64, DispatchPolicy::TwoOpBlock, 8_000, 1));
    assert!(
        r.hdi_pileup_frac > 0.6,
        "the large majority of piled-up instructions should be dispatchable, got {:.2}",
        r.hdi_pileup_frac
    );
}

#[test]
fn few_hdis_depend_on_bypassed_ndis() {
    // Paper §4: only ~10% of OOO-dispatched HDIs depend on a prior NDI.
    let r =
        run_spec(&RunSpec::new(&["equake", "gcc"], 64, DispatchPolicy::TwoOpBlockOoo, 8_000, 1));
    let hdis: u64 = r.counters.threads.iter().map(|t| t.hdis_dispatched).sum();
    assert!(hdis > 0, "OOO dispatch must produce HDIs on this workload");
    assert!(
        r.hdi_ndi_dep_frac < 0.35,
        "NDI-dependent HDIs should be a small minority, got {:.2}",
        r.hdi_ndi_dep_frac
    );
}

#[test]
fn ooo_reduces_iq_residency_vs_traditional() {
    // Paper §5: mean IQ residency drops from 21 to 15 cycles at 64 entries
    // on 2-thread workloads.
    let trad =
        run_spec(&RunSpec::new(&["twolf", "bzip2"], 64, DispatchPolicy::Traditional, 8_000, 1))
            .mean_iq_residency;
    let ooo =
        run_spec(&RunSpec::new(&["twolf", "bzip2"], 64, DispatchPolicy::TwoOpBlockOoo, 8_000, 1))
            .mean_iq_residency;
    assert!(
        ooo < trad,
        "the 1-comparator IQ must hold instructions for less time: trad {trad:.1} vs ooo {ooo:.1}"
    );
}

#[test]
fn filtered_variant_changes_little() {
    // Paper §4: idealized NDI-dependence filtering buys only ~1.2%.
    let plain = ipc(&["equake", "gcc"], 64, DispatchPolicy::TwoOpBlockOoo);
    let filtered = ipc(&["equake", "gcc"], 64, DispatchPolicy::TwoOpBlockOooFiltered);
    let delta = (filtered / plain - 1.0).abs();
    assert!(delta < 0.10, "filtering should change IPC only marginally, got {:.1}%", delta * 100.0);
}
