//! Liveness properties, checked cycle by cycle: the deadlock-avoidance
//! buffer's structural invariants hold on every cycle, a completed ROB head
//! commits promptly, and a machine that is not wedged never goes longer
//! than a bounded number of cycles without committing.
//!
//! Each property has a deterministic driver (so the checks run even where
//! proptest is unavailable) plus a proptest wrapper over random programs.

use proptest::prelude::*;
use smt_sim::core::{
    DeadlockMode, DispatchPolicy, FaultClass, FaultConfig, FetchPolicy, InstState, SimConfig,
    Simulator,
};
use smt_sim::isa::{ArchReg, TraceInst};
use smt_sim::mem::{MemModel, NonBlockingConfig};
use smt_sim::workload::{InstGenerator, ProgramTrace};

fn sim_of(programs: Vec<Vec<TraceInst>>, cfg: SimConfig) -> Simulator {
    let streams: Vec<Box<dyn InstGenerator>> = programs
        .into_iter()
        .map(|p| Box::new(ProgramTrace::once(p)) as Box<dyn InstGenerator>)
        .collect();
    Simulator::new(cfg, streams)
}

fn pc_of(i: usize) -> u64 {
    (i as u64 % 1024) * 4
}

/// NDI-heavy code in the style of the paper's Figure 2: a pair of
/// long-latency loads feeding a 2-non-ready consumer, then a pile of
/// independent work. Maximal pressure on the DAB with a tiny IQ.
fn ndi_heavy_program(reps: usize) -> Vec<TraceInst> {
    let mut prog = Vec::new();
    let mut pc = 0u64;
    for rep in 0..reps {
        let base = 0x400_0000 + (rep as u64) * 64 * 1024;
        prog.push(TraceInst::load(pc, ArchReg::int(1), Some(ArchReg::int(20)), base));
        pc += 4;
        prog.push(TraceInst::load(pc, ArchReg::int(2), Some(ArchReg::int(21)), base + 4096));
        pc += 4;
        prog.push(TraceInst::alu(
            pc,
            ArchReg::int(3),
            Some(ArchReg::int(1)),
            Some(ArchReg::int(2)),
        ));
        pc += 4;
        for k in 0..10 {
            prog.push(TraceInst::alu(pc, ArchReg::int(4 + (k % 16)), Some(ArchReg::int(22)), None));
            pc += 4;
        }
    }
    prog
}

/// `ndi_heavy_program` with a biased branch closing each independent-work
/// burst, so every fault class — including predictor flushes, which only
/// fire at branch sites — has plenty of eligible injection sites.
fn ndi_heavy_branchy_program(reps: usize) -> Vec<TraceInst> {
    let mut prog = Vec::new();
    for (i, inst) in ndi_heavy_program(reps).into_iter().enumerate() {
        prog.push(inst);
        if i % 6 == 5 {
            prog.push(TraceInst::branch(
                pc_of(prog.len()),
                Some(ArchReg::int(4)),
                i % 12 != 11,
                pc_of(i),
            ));
        }
    }
    prog
}

/// Step `sim` one cycle at a time until `expected` instructions have
/// committed, asserting the DAB invariants after every cycle and failing if
/// the machine ever goes `max_gap` cycles without committing anything.
/// Returns the simulator so callers can inspect the final counters.
fn drive_checked(
    mut sim: Simulator,
    expected: u64,
    max_gap: u64,
) -> Result<Simulator, TestCaseError> {
    let mut last_total = 0u64;
    let mut last_change = 0u64;
    while sim.counters().total_committed() < expected {
        sim.cycle();
        sim.assert_dab_invariants();
        let total = sim.counters().total_committed();
        if total != last_total {
            last_total = total;
            last_change = sim.now();
        }
        prop_assert!(
            sim.now() - last_change <= max_gap,
            "no commit for {} cycles (cycle {}, {}/{} committed)",
            sim.now() - last_change,
            sim.now(),
            total,
            expected
        );
    }
    Ok(sim)
}

/// The longest legitimate gap between commits is one main-memory round trip
/// (~150 cycles) plus pipeline tail; anything past this bound means the
/// machine has wedged.
const MAX_COMMIT_GAP: u64 = 2_000;

#[test]
fn dab_invariants_hold_every_cycle_under_ndi_pressure() {
    let mut cfg = SimConfig::paper(4, DispatchPolicy::TwoOpBlockOoo);
    cfg.deadlock = DeadlockMode::Dab { size: 2 };
    let prog = ndi_heavy_program(50);
    let expected = prog.len() as u64;
    drive_checked(sim_of(vec![prog], cfg), expected, MAX_COMMIT_GAP).unwrap();
}

#[test]
fn dab_invariants_hold_under_arbitrated_issue() {
    let mut cfg = SimConfig::paper(4, DispatchPolicy::TwoOpBlockOooFiltered);
    cfg.deadlock = DeadlockMode::DabArbitrated { size: 2 };
    let p1 = ndi_heavy_program(30);
    let p2 = ndi_heavy_program(30);
    let expected = (p1.len() + p2.len()) as u64;
    drive_checked(sim_of(vec![p1, p2], cfg), expected, MAX_COMMIT_GAP).unwrap();
}

#[test]
fn completed_rob_head_commits_promptly() {
    let mut cfg = SimConfig::paper(8, DispatchPolicy::TwoOpBlockOoo);
    cfg.deadlock = DeadlockMode::Dab { size: 2 };
    let prog = ndi_heavy_program(40);
    let expected = prog.len() as u64;
    let mut sim = sim_of(vec![prog], cfg);
    // A completed head must retire on the next commit pass; a streak of
    // observations of the *same* completed head means commit has stalled.
    let mut streak = 0u64;
    let mut prev_head: Option<u64> = None;
    while sim.counters().total_committed() < expected {
        sim.cycle();
        let head = sim.rob_head_snapshot()[0];
        match head {
            Some((idx, InstState::Completed, _)) if prev_head == Some(idx) => streak += 1,
            Some((idx, InstState::Completed, _)) => {
                prev_head = Some(idx);
                streak = 0;
            }
            _ => {
                prev_head = None;
                streak = 0;
            }
        }
        assert!(
            streak <= 8,
            "completed head {:?} sat uncommitted for {} cycles at cycle {}",
            prev_head,
            streak,
            sim.now()
        );
        assert!(sim.now() < 2_000_000, "run did not finish");
    }
}

/// A fault configuration hot enough to fire dozens of times over an
/// NDI-heavy run, budgeted so latency-adding classes cannot starve commits
/// past the legitimate gap bound.
fn hot_faults(class: FaultClass, seed: u64) -> FaultConfig {
    let mut f = FaultConfig::single(class, seed);
    f.class_mut(class).rate_ppm = 300_000;
    f.class_mut(class).budget = 48;
    f
}

#[test]
fn liveness_holds_under_every_fault_class_with_dab() {
    for class in FaultClass::ALL {
        let mut cfg = SimConfig::paper(4, DispatchPolicy::TwoOpBlockOoo);
        cfg.deadlock = DeadlockMode::Dab { size: 2 };
        cfg.faults = hot_faults(class, 0xF417_0001);
        let prog = ndi_heavy_branchy_program(40);
        let expected = prog.len() as u64;
        let sim = drive_checked(sim_of(vec![prog], cfg), expected, MAX_COMMIT_GAP)
            .unwrap_or_else(|e| panic!("{}: {e:?}", class.name()));
        assert!(
            sim.counters().faults.total_injected() > 0,
            "{}: the fault seed must actually inject",
            class.name()
        );
    }
}

#[test]
fn liveness_holds_under_every_fault_class_with_watchdog() {
    for class in FaultClass::ALL {
        let mut cfg = SimConfig::paper(4, DispatchPolicy::TwoOpBlockOoo);
        cfg.deadlock = DeadlockMode::Watchdog { timeout: 400 };
        cfg.faults = hot_faults(class, 0xF417_0002);
        let prog = ndi_heavy_branchy_program(40);
        let expected = prog.len() as u64;
        let sim = drive_checked(sim_of(vec![prog], cfg), expected, MAX_COMMIT_GAP)
            .unwrap_or_else(|e| panic!("{}: {e:?}", class.name()));
        assert!(
            sim.counters().faults.total_injected() > 0,
            "{}: the fault seed must actually inject",
            class.name()
        );
    }
}

#[test]
fn mlp_gated_thread_always_wakes_under_faults_and_mshr_starvation() {
    // The MLP gate's liveness contract: a gated thread always has a
    // registered wake source (the gate timestamp itself), so even the
    // worst case — every fault class firing, a single L1D MSHR
    // serializing all misses, two threads ping-ponging the gate — must
    // keep committing within the legitimate gap bound. A gate armed
    // without a wake source would hold fetch forever once the pipeline
    // drained, and this driver would trip the gap assertion.
    for class in FaultClass::ALL {
        let mut cfg = SimConfig::paper(4, DispatchPolicy::TwoOpBlockOoo);
        cfg.deadlock = DeadlockMode::Dab { size: 2 };
        cfg.fetch_policy = FetchPolicy::MlpGate;
        cfg.hierarchy.model = MemModel::NonBlocking(NonBlockingConfig {
            l1d_mshrs: 1,
            l2_mshrs: 1,
            bus_cycles_per_transfer: 8,
            write_buffer_entries: 2,
            write_buffer_drain_per_cycle: 1,
            ..NonBlockingConfig::default()
        });
        cfg.faults = hot_faults(class, 0xF417_0003);
        let p1 = ndi_heavy_branchy_program(25);
        let p2 = ndi_heavy_branchy_program(25);
        let expected = (p1.len() + p2.len()) as u64;
        let sim = drive_checked(sim_of(vec![p1, p2], cfg), expected, MAX_COMMIT_GAP)
            .unwrap_or_else(|e| panic!("{}: {e:?}", class.name()));
        assert!(
            sim.counters().threads.iter().any(|t| t.mlp_gate_cycles > 0),
            "{}: the gate never engaged — the scenario does not exercise MLP-GATE",
            class.name()
        );
    }
}

#[test]
fn ilp_yield_liveness_under_mshr_starvation() {
    // ILP-YIELD adds no gate, but its window rolls must not disturb the
    // commit cadence under the same starved memory system.
    let mut cfg = SimConfig::paper(4, DispatchPolicy::TwoOpBlockOoo);
    cfg.deadlock = DeadlockMode::Dab { size: 2 };
    cfg.fetch_policy = FetchPolicy::IlpYield;
    cfg.hierarchy.model = MemModel::NonBlocking(NonBlockingConfig {
        l1d_mshrs: 1,
        l2_mshrs: 1,
        bus_cycles_per_transfer: 8,
        write_buffer_entries: 2,
        write_buffer_drain_per_cycle: 1,
        ..NonBlockingConfig::default()
    });
    let p1 = ndi_heavy_program(30);
    let p2 = ndi_heavy_program(30);
    let expected = (p1.len() + p2.len()) as u64;
    drive_checked(sim_of(vec![p1, p2], cfg), expected, MAX_COMMIT_GAP).unwrap();
}

/// Strategy: one random but *valid* dynamic instruction (mirrors the
/// generator in `no_deadlock_prop.rs`).
fn arb_inst(idx: usize) -> impl Strategy<Value = TraceInst> {
    let pc = (idx as u64 % 512) * 4;
    prop_oneof![
        (1u8..30, proptest::option::of(1u8..30), proptest::option::of(1u8..30)).prop_map(
            move |(d, s1, s2)| TraceInst::alu(
                pc,
                ArchReg::int(d),
                s1.map(ArchReg::int),
                s2.map(ArchReg::int)
            )
        ),
        (1u8..30, proptest::option::of(1u8..30), 0u64..(1 << 22)).prop_map(
            move |(d, base, addr)| TraceInst::load(
                pc,
                ArchReg::int(d),
                base.map(ArchReg::int),
                addr
            )
        ),
        (proptest::option::of(1u8..30), proptest::option::of(1u8..30), 0u64..(1 << 22)).prop_map(
            move |(data, base, addr)| TraceInst::store(
                pc,
                data.map(ArchReg::int),
                base.map(ArchReg::int),
                addr
            )
        ),
        (proptest::option::of(1u8..30), any::<bool>(), 0u64..2048).prop_map(
            move |(cond, taken, target)| TraceInst::branch(
                pc,
                cond.map(ArchReg::int),
                taken,
                target * 4
            )
        ),
    ]
}

fn arb_program(max_len: usize) -> impl Strategy<Value = Vec<TraceInst>> {
    proptest::collection::vec(any::<u8>(), 1..max_len).prop_flat_map(|bytes| {
        bytes.into_iter().enumerate().map(|(i, _)| arb_inst(i)).collect::<Vec<_>>()
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    #[test]
    fn dab_invariants_hold_on_random_programs(p1 in arb_program(150), p2 in arb_program(150)) {
        let mut cfg = SimConfig::paper(8, DispatchPolicy::TwoOpBlockOoo);
        cfg.deadlock = DeadlockMode::Dab { size: 2 };
        let expected = (p1.len() + p2.len()) as u64;
        drive_checked(sim_of(vec![p1, p2], cfg), expected, MAX_COMMIT_GAP)?;
    }

    #[test]
    fn liveness_holds_on_random_programs_with_random_fault_class(
        p1 in arb_program(150),
        p2 in arb_program(150),
        class_idx in 0usize..4,
        fault_seed in any::<u64>(),
    ) {
        let mut cfg = SimConfig::paper(8, DispatchPolicy::TwoOpBlockOoo);
        cfg.deadlock = DeadlockMode::Dab { size: 2 };
        cfg.faults = hot_faults(FaultClass::ALL[class_idx], fault_seed);
        let expected = (p1.len() + p2.len()) as u64;
        drive_checked(sim_of(vec![p1, p2], cfg), expected, MAX_COMMIT_GAP)?;
    }

    #[test]
    fn commit_gap_is_bounded_under_traditional_dispatch(
        p1 in arb_program(150),
        p2 in arb_program(150),
    ) {
        let cfg = SimConfig::paper(16, DispatchPolicy::Traditional);
        let expected = (p1.len() + p2.len()) as u64;
        drive_checked(sim_of(vec![p1, p2], cfg), expected, MAX_COMMIT_GAP)?;
    }
}
