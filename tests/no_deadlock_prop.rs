//! Property-based deadlock-freedom and liveness tests: random programs on
//! every dispatch policy and deadlock mechanism must always drain fully.

use proptest::prelude::*;
use smt_sim::core::{DeadlockMode, DispatchPolicy, RunOutcome, SimConfig, Simulator};
use smt_sim::isa::{ArchReg, TraceInst};
use smt_sim::workload::{InstGenerator, ProgramTrace};

/// Strategy: one random but *valid* dynamic instruction.
fn arb_inst(idx: usize) -> impl Strategy<Value = TraceInst> {
    let pc = (idx as u64 % 512) * 4;
    prop_oneof![
        // ALU with 0-2 sources.
        (1u8..30, proptest::option::of(1u8..30), proptest::option::of(1u8..30)).prop_map(
            move |(d, s1, s2)| TraceInst::alu(
                pc,
                ArchReg::int(d),
                s1.map(ArchReg::int),
                s2.map(ArchReg::int)
            )
        ),
        // Load from an arbitrary small address space.
        (1u8..30, proptest::option::of(1u8..30), 0u64..(1 << 22)).prop_map(
            move |(d, base, addr)| TraceInst::load(
                pc,
                ArchReg::int(d),
                base.map(ArchReg::int),
                addr
            )
        ),
        // Store.
        (proptest::option::of(1u8..30), proptest::option::of(1u8..30), 0u64..(1 << 22)).prop_map(
            move |(data, base, addr)| TraceInst::store(
                pc,
                data.map(ArchReg::int),
                base.map(ArchReg::int),
                addr
            )
        ),
        // Conditional branch.
        (proptest::option::of(1u8..30), any::<bool>(), 0u64..2048).prop_map(
            move |(cond, taken, target)| TraceInst::branch(
                pc,
                cond.map(ArchReg::int),
                taken,
                target * 4
            )
        ),
    ]
}

fn arb_program(max_len: usize) -> impl Strategy<Value = Vec<TraceInst>> {
    proptest::collection::vec(any::<u8>(), 1..max_len).prop_flat_map(|bytes| {
        bytes.into_iter().enumerate().map(|(i, _)| arb_inst(i)).collect::<Vec<_>>()
    })
}

fn run_to_completion(
    programs: Vec<Vec<TraceInst>>,
    iq: usize,
    policy: DispatchPolicy,
    deadlock: DeadlockMode,
) -> Result<(), TestCaseError> {
    run_to_completion_cfg(programs, iq, policy, deadlock, false)
}

fn run_to_completion_cfg(
    programs: Vec<Vec<TraceInst>>,
    iq: usize,
    policy: DispatchPolicy,
    deadlock: DeadlockMode,
    wrong_path: bool,
) -> Result<(), TestCaseError> {
    let expected: Vec<u64> = programs.iter().map(|p| p.len() as u64).collect();
    let mut cfg = SimConfig::paper(iq, policy);
    cfg.deadlock = deadlock;
    cfg.wrong_path = wrong_path;
    cfg.max_cycles = 2_000_000;
    let streams: Vec<Box<dyn InstGenerator>> = programs
        .into_iter()
        .map(|p| Box::new(ProgramTrace::once(p)) as Box<dyn InstGenerator>)
        .collect();
    let mut sim = Simulator::new(cfg, streams);
    let outcome = sim.run(u64::MAX);
    prop_assert!(matches!(outcome, RunOutcome::AllFinished), "pipeline wedged: {:?}", outcome);
    sim.assert_quiescent_invariants();
    for (t, want) in expected.iter().enumerate() {
        prop_assert_eq!(
            sim.counters().threads[t].committed,
            *want,
            "thread {} lost instructions",
            t
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn traditional_never_wedges(p1 in arb_program(200), p2 in arb_program(200)) {
        run_to_completion(vec![p1, p2], 16, DispatchPolicy::Traditional, DeadlockMode::None)?;
    }

    #[test]
    fn two_op_block_never_wedges(p1 in arb_program(200), p2 in arb_program(200)) {
        run_to_completion(vec![p1, p2], 16, DispatchPolicy::TwoOpBlock, DeadlockMode::None)?;
    }

    #[test]
    fn ooo_with_dab_never_wedges(p1 in arb_program(200), p2 in arb_program(200)) {
        run_to_completion(
            vec![p1, p2],
            8, // tiny queue maximizes deadlock pressure
            DispatchPolicy::TwoOpBlockOoo,
            DeadlockMode::Dab { size: 2 },
        )?;
    }

    #[test]
    fn ooo_with_watchdog_never_wedges(p1 in arb_program(150), p2 in arb_program(150)) {
        run_to_completion(
            vec![p1, p2],
            8,
            DispatchPolicy::TwoOpBlockOoo,
            DeadlockMode::Watchdog { timeout: 500 },
        )?;
    }

    #[test]
    fn filtered_ooo_never_wedges(p in arb_program(250)) {
        run_to_completion(
            vec![p],
            8,
            DispatchPolicy::TwoOpBlockOooFiltered,
            DeadlockMode::Dab { size: 2 },
        )?;
    }

    #[test]
    fn half_price_never_wedges(p1 in arb_program(200), p2 in arb_program(200)) {
        run_to_completion(vec![p1, p2], 8, DispatchPolicy::HalfPrice, DeadlockMode::None)?;
    }

    #[test]
    fn packed_never_wedges(p1 in arb_program(200), p2 in arb_program(200)) {
        run_to_completion(vec![p1, p2], 8, DispatchPolicy::Packed, DeadlockMode::None)?;
    }

    #[test]
    fn tag_eliminated_never_wedges(p1 in arb_program(200), p2 in arb_program(200)) {
        run_to_completion(vec![p1, p2], 8, DispatchPolicy::TagEliminated, DeadlockMode::None)?;
    }

    #[test]
    fn wrong_path_mode_never_wedges(p1 in arb_program(200), p2 in arb_program(200)) {
        run_to_completion_cfg(
            vec![p1, p2],
            8,
            DispatchPolicy::TwoOpBlockOoo,
            DeadlockMode::Dab { size: 2 },
            true,
        )?;
    }

    #[test]
    fn wrong_path_traditional_never_wedges(p1 in arb_program(200), p2 in arb_program(200)) {
        run_to_completion_cfg(
            vec![p1, p2],
            8,
            DispatchPolicy::Traditional,
            DeadlockMode::None,
            true,
        )?;
    }

    #[test]
    fn three_threads_share_safely(
        p1 in arb_program(120),
        p2 in arb_program(120),
        p3 in arb_program(120),
    ) {
        run_to_completion(
            vec![p1, p2, p3],
            12,
            DispatchPolicy::TwoOpBlockOoo,
            DeadlockMode::Dab { size: 4 },
        )?;
    }
}
