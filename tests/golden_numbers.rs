//! Golden-numbers regression test: exact end-to-end results for one small
//! fixed workload under each dispatch policy.
//!
//! The reproducibility suite proves runs are *self*-consistent; this test
//! pins the absolute numbers, so any change to pipeline timing — stage
//! ordering, latencies, the idle-cycle fast-forward, scheduler behaviour —
//! shows up as a diff against a known-good table instead of silently
//! shifting every figure.
//!
//! The programs are hand-built [`ProgramTrace`]s, NOT the synthetic
//! generators: the generators draw from `rand`, whose stream is not part
//! of this repo's compatibility surface, while these traces are fixed by
//! construction on every toolchain.

use smt_sim::core::{DispatchPolicy, FetchPolicy, SimConfig, Simulator};
use smt_sim::isa::{ArchReg, TraceInst};
use smt_sim::stats::throughput_ipc;
use smt_sim::workload::{InstGenerator, ProgramTrace};

/// Thread 0: NDI-heavy code in the style of the paper's Figure 2 — two
/// parallel cache-missing loads feeding a two-non-ready-source consumer
/// (an NDI under 2OP_BLOCK), then a store and a biased loop-closing
/// branch. Under the traditional scheduler these NDIs sit in the shared
/// IQ; under 2OP_BLOCK they block this thread's dispatch instead.
fn membound_program() -> Vec<TraceInst> {
    let mut prog = Vec::new();
    let mut pc = 0u64;
    for i in 0..8u64 {
        let addr = 0x100_0000 + i * 64 * 1024;
        prog.push(TraceInst::load(pc, ArchReg::int(1), Some(ArchReg::int(10)), addr));
        pc += 4;
        prog.push(TraceInst::load(pc, ArchReg::int(2), Some(ArchReg::int(10)), addr + 4096));
        pc += 4;
        prog.push(TraceInst::alu(
            pc,
            ArchReg::int(3),
            Some(ArchReg::int(1)),
            Some(ArchReg::int(2)),
        ));
        pc += 4;
        prog.push(TraceInst::store(pc, Some(ArchReg::int(3)), Some(ArchReg::int(10)), addr + 8));
        pc += 4;
        prog.push(TraceInst::branch(pc, Some(ArchReg::int(3)), i != 7, 0));
        pc += 4;
    }
    prog
}

/// Thread 1: a mostly-high-ILP loop over a tiny cache-resident working
/// set, with one short-lived NDI per iteration (two L1-hitting loads
/// feeding a two-source consumer) so out-of-order dispatch has HDIs to
/// hoist past it.
fn ilp_program() -> Vec<TraceInst> {
    let mut prog = Vec::new();
    let mut pc = 0x8000u64;
    for i in 0..6u64 {
        prog.push(TraceInst::load(pc, ArchReg::int(4), Some(ArchReg::int(11)), 0x2000 + i * 8));
        pc += 4;
        prog.push(TraceInst::load(pc, ArchReg::int(5), Some(ArchReg::int(11)), 0x2100 + i * 8));
        pc += 4;
        prog.push(TraceInst::alu(
            pc,
            ArchReg::int(6),
            Some(ArchReg::int(4)),
            Some(ArchReg::int(5)),
        ));
        pc += 4;
        for k in 0..4u64 {
            prog.push(TraceInst::alu(
                pc,
                ArchReg::int(7 + (k as u8 % 8)),
                Some(ArchReg::int(12)),
                None,
            ));
            pc += 4;
        }
        prog.push(TraceInst::branch(pc, Some(ArchReg::int(6)), i != 5, 0x8000));
        pc += 4;
    }
    prog
}

/// Run the fixed two-thread workload to a 4 000-commit target at a
/// 16-entry IQ (small enough for the NDI thread to clog it) and return
/// `(cycles, committed[0], committed[1])`.
fn run_golden(policy: DispatchPolicy) -> (u64, u64, u64) {
    let streams: Vec<Box<dyn InstGenerator>> = vec![
        Box::new(ProgramTrace::looped(membound_program())),
        Box::new(ProgramTrace::looped(ilp_program())),
    ];
    let cfg = SimConfig::paper(16, policy);
    let mut sim = Simulator::new(cfg, streams);
    let outcome = sim.run(4_000);
    assert!(
        matches!(outcome, smt_sim::core::RunOutcome::TargetReached),
        "{policy:?}: golden run must reach its commit target, got {outcome:?}"
    );
    let c = sim.counters();
    (c.cycles, c.threads[0].committed, c.threads[1].committed)
}

#[test]
fn golden_numbers_are_stable_across_all_dispatch_policies() {
    // (policy, cycles, committed t0, committed t1) — regenerate by running
    // this test and copying the "actual" table from the failure message.
    // The spread is the paper's story in miniature: plain 2OP_BLOCK's
    // dispatch blocking starves the ILP thread (2× the cycles), and
    // out-of-order dispatch recovers nearly all of the traditional
    // scheduler's throughput.
    let expected = [
        (DispatchPolicy::Traditional, 929u64, 20u64, 4_007u64),
        (DispatchPolicy::TwoOpBlock, 1_945, 180, 4_002),
        (DispatchPolicy::TwoOpBlockOoo, 936, 20, 4_007),
    ];
    let actual: Vec<(DispatchPolicy, u64, u64, u64)> = expected
        .iter()
        .map(|&(policy, ..)| {
            let (cycles, c0, c1) = run_golden(policy);
            (policy, cycles, c0, c1)
        })
        .collect();
    assert_eq!(
        actual,
        expected.to_vec(),
        "golden numbers drifted — if the change is intentional, update the table"
    );
    // The derived headline metric follows the pinned integers exactly.
    for &(policy, cycles, c0, c1) in &actual {
        let ipc = throughput_ipc(c0 + c1, cycles);
        assert_eq!(ipc, (c0 + c1) as f64 / cycles as f64, "{policy:?}: IPC derivation");
        assert!(ipc > 0.0 && ipc < 8.0, "{policy:?}: IPC {ipc} outside sane bounds");
    }
}

/// Two copies of the memory-bound trace under STALL fetch (the paper's
/// memory-bound configuration, where whole threads park on misses and most
/// cycles are idle — the regime the event-driven loop exists for). Returns
/// `(cycles, committed[0], committed[1], ff_jumps, ff_skipped_cycles)`.
fn run_golden_membound(fast_forward: bool) -> (u64, u64, u64, u64, u64) {
    let streams: Vec<Box<dyn InstGenerator>> = vec![
        Box::new(ProgramTrace::looped(membound_program())),
        Box::new(ProgramTrace::looped(membound_program())),
    ];
    let mut cfg = SimConfig::paper(16, DispatchPolicy::Traditional);
    cfg.fetch_policy = FetchPolicy::Stall;
    cfg.fast_forward = fast_forward;
    let mut sim = Simulator::new(cfg, streams);
    let outcome = sim.run(500);
    assert!(
        matches!(outcome, smt_sim::core::RunOutcome::TargetReached),
        "membound golden run must reach its commit target, got {outcome:?}"
    );
    let c = sim.counters();
    let (jumps, skipped) = sim.ff_stats();
    (c.cycles, c.threads[0].committed, c.threads[1].committed, jumps, skipped)
}

#[test]
fn golden_numbers_are_stable_for_the_event_driven_loop() {
    // Pins the event-driven loop's absolute behaviour on a memory-bound
    // two-thread trace: the architectural numbers (cycles, per-thread
    // commits) must be identical with the calendar jumps on and off, and
    // the jump statistics themselves are pinned so a regression that stops
    // jumps from happening (or splits them differently) is visible even
    // though it would not change architectural state. Regenerate by
    // running this test and copying the actual tuple from the failure.
    let expected_arch = (1_107u64, 237u64, 502u64);
    let (scyc, sc0, sc1, sjumps, sskip) = run_golden_membound(false);
    let (fcyc, fc0, fc1, fjumps, fskip) = run_golden_membound(true);
    assert_eq!((scyc, sc0, sc1), expected_arch, "plain run drifted from the golden table");
    assert_eq!((fcyc, fc0, fc1), expected_arch, "event-driven run drifted from the golden table");
    assert_eq!((sjumps, sskip), (0, 0), "disabled fast-forward must not jump");
    assert_eq!(
        (fjumps, fskip),
        (13u64, 595u64),
        "jump statistics drifted — if the change is intentional, update the table"
    );
    // The skip machinery must be doing real work on this workload: most of
    // the run is idle miss windows.
    assert!(fskip > fcyc / 2, "fewer than half the cycles were skipped ({fskip}/{fcyc})");
}
