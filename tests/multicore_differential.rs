//! Differential tests for the multi-core machine.
//!
//! A [`Machine`] with one core is the single-core [`Simulator`] — not
//! approximately, *bit for bit*: identical cycle counts, identical
//! fast-forward jump statistics, identical per-thread counters, identical
//! fault streams. The two run through the `Core` pipeline via different
//! wrappers (the simulator steps its private hierarchy inline; the machine
//! steps a shared multi-requestor hierarchy once per cycle and computes
//! calendar jumps as a min across cores), so this equivalence is a genuine
//! check that the multi-core plumbing — per-core attribution, shared-step
//! ordering, the jump fold — changes nothing until a second core exists.
//!
//! Every allocation policy must degenerate identically at N=1: with one
//! core there is nowhere to migrate, so even the dynamic policies must
//! leave the pipeline untouched.

use smt_sim::core::{
    AllocConfig, AllocPolicy, DispatchPolicy, FaultClass, FaultConfig, FetchPolicy, SimConfig,
};
use smt_sim::mem::{MemModel, NonBlockingConfig};
use smt_sim::sweep::{run_machine_spec_with_config, run_spec_with_config, RunSpec};

/// Run `spec` through the single-core simulator and through a one-core
/// machine under `alloc`, and assert every observable matches bit for bit.
fn assert_degenerate(label: &str, spec: &RunSpec, cfg: SimConfig, alloc: AllocConfig) {
    let sim = run_spec_with_config(spec, cfg.clone());
    let mac = run_machine_spec_with_config(spec, cfg, 1, alloc);
    assert_eq!(sim.cycles, mac.cycles, "{label}: cycle counts diverge");
    assert_eq!(sim.ff_jumps, mac.ff_jumps, "{label}: calendar jump counts diverge");
    assert_eq!(sim.ff_skipped_cycles, mac.ff_skipped_cycles, "{label}: skipped cycles diverge");
    assert_eq!(sim.per_thread_ipc, mac.per_thread_ipc, "{label}: per-thread IPC diverges");
    assert_eq!(sim.counters, mac.counters, "{label}: counters diverge");
    assert_eq!(mac.migrations, 0, "{label}: a one-core machine cannot migrate");
}

#[test]
fn one_core_machine_matches_simulator_across_dispatch_policies() {
    for policy in
        [DispatchPolicy::Traditional, DispatchPolicy::TwoOpBlock, DispatchPolicy::TwoOpBlockOoo]
    {
        let spec = RunSpec::new(&["gcc", "art"], 48, policy, 3_000, 7).with_warmup(500);
        let cfg = SimConfig::paper(48, policy);
        assert_degenerate(&format!("{policy:?}"), &spec, cfg, AllocConfig::default());
    }
}

#[test]
fn one_core_machine_matches_simulator_under_every_allocation_policy() {
    // With one core the allocation policy is irrelevant by construction;
    // prove it stays irrelevant (no epoch machinery bleeding into timing —
    // dynamic policies clamp calendar jumps at epoch boundaries only when
    // a second core exists).
    let spec = RunSpec::new(&["art", "twolf"], 48, DispatchPolicy::TwoOpBlockOoo, 2_500, 11)
        .with_warmup(500);
    for policy in AllocPolicy::ALL {
        let alloc = AllocConfig { policy, epoch_cycles: 100, ..AllocConfig::default() };
        let cfg = SimConfig::paper(48, DispatchPolicy::TwoOpBlockOoo);
        assert_degenerate(policy.name(), &spec, cfg, alloc);
    }
}

#[test]
fn one_core_machine_matches_simulator_under_round_robin_fetch() {
    // Round-robin fetch exercises the jump-time pick-cursor rotation; the
    // machine's min-across-cores fold must preserve it exactly.
    let spec = RunSpec::new(&["art", "art"], 48, DispatchPolicy::Traditional, 2_000, 21);
    let mut cfg = SimConfig::paper(48, DispatchPolicy::Traditional);
    cfg.fetch_policy = FetchPolicy::RoundRobin;
    assert_degenerate("rr-fetch", &spec, cfg, AllocConfig::default());
}

#[test]
fn one_core_machine_matches_simulator_with_faults_injected() {
    // Fault sites are keyed on cycle/thread/trace_idx, so identical timing
    // must produce identical injection streams through the machine path.
    let spec = RunSpec::new(&["gcc", "twolf"], 48, DispatchPolicy::TwoOpBlockOoo, 2_500, 3);
    let mut cfg = SimConfig::paper(48, DispatchPolicy::TwoOpBlockOoo);
    let mut faults = FaultConfig::single(FaultClass::CacheMissExtra, 41);
    faults.class_mut(FaultClass::CacheMissExtra).rate_ppm = 300_000;
    cfg.faults = faults;
    let sim = run_spec_with_config(&spec, cfg.clone());
    assert!(sim.counters.faults.cache_extra_injected > 0, "fault config must actually fire");
    assert_degenerate("faults", &spec, cfg, AllocConfig::default());
}

#[test]
fn one_core_machine_matches_simulator_with_finite_mshrs_and_bus() {
    // A constrained non-blocking hierarchy (finite MSHRs, a slow shared
    // bus, a small write buffer) drives the multi-requestor arbitration
    // and write-buffer drain paths hard; the per-core attribution must
    // still be exact at N=1.
    let spec = RunSpec::new(&["art", "twolf"], 48, DispatchPolicy::TwoOpBlockOoo, 2_000, 5);
    let mut cfg = SimConfig::paper(48, DispatchPolicy::TwoOpBlockOoo);
    let nb = NonBlockingConfig {
        l1d_mshrs: 4,
        l2_mshrs: 8,
        bus_cycles_per_transfer: 6,
        write_buffer_entries: 4,
        write_buffer_drain_per_cycle: 1,
        ..NonBlockingConfig::default()
    };
    cfg.hierarchy.model = MemModel::NonBlocking(nb);
    assert_degenerate("finite-mem", &spec, cfg, AllocConfig::default());
}

#[test]
fn one_core_machine_matches_simulator_under_stall_and_flush_fetch() {
    for fetch_policy in [FetchPolicy::Stall, FetchPolicy::Flush] {
        let spec = RunSpec::new(&["art", "twolf"], 48, DispatchPolicy::TwoOpBlockOoo, 2_000, 11);
        let mut cfg = SimConfig::paper(48, DispatchPolicy::TwoOpBlockOoo);
        cfg.fetch_policy = fetch_policy;
        assert_degenerate(&format!("{fetch_policy:?}"), &spec, cfg, AllocConfig::default());
    }
}

#[test]
fn one_core_machine_matches_simulator_under_mlp_gate_and_ilp_yield_fetch() {
    // The new policies keep per-thread state (gate timestamp, yield
    // window) inside the core, so the machine wrapper must degenerate
    // exactly like the legacy policies do.
    for fetch_policy in [FetchPolicy::MlpGate, FetchPolicy::IlpYield] {
        let spec = RunSpec::new(&["art", "twolf"], 48, DispatchPolicy::TwoOpBlockOoo, 2_000, 11);
        let mut cfg = SimConfig::paper(48, DispatchPolicy::TwoOpBlockOoo);
        cfg.fetch_policy = fetch_policy;
        assert_degenerate(&format!("{fetch_policy:?}"), &spec, cfg, AllocConfig::default());
    }
}

#[test]
fn one_core_machine_matches_simulator_new_policies_with_finite_mshrs_and_faults() {
    // New policies crossed with a constrained hierarchy and injected
    // fault latency: the gate timestamps derive from fill times the
    // multi-requestor arbitration computes, so per-core attribution must
    // stay exact.
    for fetch_policy in [FetchPolicy::MlpGate, FetchPolicy::IlpYield] {
        let spec = RunSpec::new(&["gcc", "twolf"], 48, DispatchPolicy::TwoOpBlockOoo, 2_000, 3);
        let mut cfg = SimConfig::paper(48, DispatchPolicy::TwoOpBlockOoo);
        cfg.fetch_policy = fetch_policy;
        let nb = NonBlockingConfig {
            l1d_mshrs: 4,
            l2_mshrs: 8,
            bus_cycles_per_transfer: 6,
            write_buffer_entries: 4,
            write_buffer_drain_per_cycle: 1,
            ..NonBlockingConfig::default()
        };
        cfg.hierarchy.model = MemModel::NonBlocking(nb);
        let mut faults = FaultConfig::single(FaultClass::CacheMissExtra, 41);
        faults.class_mut(FaultClass::CacheMissExtra).rate_ppm = 300_000;
        cfg.faults = faults;
        let sim = run_spec_with_config(&spec, cfg.clone());
        assert!(sim.counters.faults.cache_extra_injected > 0, "fault config must actually fire");
        assert_degenerate(
            &format!("{fetch_policy:?}-mshr-faults"),
            &spec,
            cfg,
            AllocConfig::default(),
        );
    }
}

#[test]
fn two_core_machine_finishes_with_migration_under_new_fetch_policies() {
    // Migration crosses extract/install, which must reset the gate and
    // yield state: an imbalanced mix with a short epoch forces the
    // dynamic policies through that path and the run must still finish
    // with every thread committing.
    for fetch_policy in [FetchPolicy::MlpGate, FetchPolicy::IlpYield] {
        let spec = RunSpec::new(
            &["art", "art", "twolf", "gcc"],
            48,
            DispatchPolicy::TwoOpBlockOoo,
            2_500,
            13,
        )
        .with_warmup(500);
        let alloc = AllocConfig {
            policy: AllocPolicy::MlpBalanced,
            epoch_cycles: 500,
            ..AllocConfig::default()
        };
        let mut cfg = SimConfig::paper(48, DispatchPolicy::TwoOpBlockOoo);
        cfg.fetch_policy = fetch_policy;
        let r = run_machine_spec_with_config(&spec, cfg, 2, alloc);
        assert!(r.outcome_target_reached, "{fetch_policy:?}: run must finish");
        for (t, ipc) in r.per_thread_ipc.iter().enumerate() {
            assert!(*ipc > 0.0, "{fetch_policy:?}: thread {t} committed nothing");
        }
    }
}

#[test]
fn two_core_machine_commits_and_attributes_work_to_both_cores() {
    // Not a differential — a smoke check that N=2 actually distributes
    // work: every thread must commit, and the machine must finish.
    let spec = RunSpec::new(
        &["gcc", "art", "crafty", "mesa"],
        48,
        DispatchPolicy::TwoOpBlockOoo,
        2_000,
        9,
    )
    .with_warmup(500);
    let cfg = SimConfig::paper(48, DispatchPolicy::TwoOpBlockOoo);
    let r = run_machine_spec_with_config(&spec, cfg, 2, AllocConfig::default());
    assert!(r.outcome_target_reached, "4 threads on 2 cores must reach the target");
    for (t, ipc) in r.per_thread_ipc.iter().enumerate() {
        assert!(*ipc > 0.0, "thread {t} committed nothing");
    }
}

#[test]
fn dynamic_policies_migrate_on_an_imbalanced_two_core_machine() {
    // Three memory-bound threads packed against one compute thread gives a
    // dynamic policy an imbalance worth correcting; with a short epoch it
    // must take at least one migration and still finish the run.
    let spec =
        RunSpec::new(&["art", "art", "twolf", "gcc"], 48, DispatchPolicy::TwoOpBlockOoo, 2_500, 13)
            .with_warmup(500);
    let mut any_migrated = false;
    for policy in [AllocPolicy::IlpBalanced, AllocPolicy::MlpBalanced, AllocPolicy::ContentionAware]
    {
        let alloc = AllocConfig { policy, epoch_cycles: 500, ..AllocConfig::default() };
        let cfg = SimConfig::paper(48, DispatchPolicy::TwoOpBlockOoo);
        let r = run_machine_spec_with_config(&spec, cfg, 2, alloc);
        assert!(r.outcome_target_reached, "{}: run must still finish", policy.name());
        any_migrated |= r.migrations > 0;
    }
    assert!(any_migrated, "no dynamic policy migrated despite a packed imbalance");
}

#[test]
fn machine_runs_are_deterministic() {
    let spec =
        RunSpec::new(&["gcc", "art", "equake"], 48, DispatchPolicy::TwoOpBlockOoo, 2_000, 17);
    let alloc = AllocConfig {
        policy: AllocPolicy::MlpBalanced,
        epoch_cycles: 400,
        ..AllocConfig::default()
    };
    let cfg = SimConfig::paper(48, DispatchPolicy::TwoOpBlockOoo);
    let a = run_machine_spec_with_config(&spec, cfg.clone(), 2, alloc);
    let b = run_machine_spec_with_config(&spec, cfg, 2, alloc);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.migrations, b.migrations);
    assert_eq!(a.counters, b.counters);
}
