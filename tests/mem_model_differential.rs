//! Differential tests for the non-blocking memory model.
//!
//! The degenerate non-blocking configuration — unlimited MSHRs at every
//! level, an infinitely fast bus, and an instant store write buffer — must
//! be *bit-for-bit* equivalent to the legacy flat-latency model: identical
//! cycle counts, identical per-thread counters, identical cache statistics,
//! identical fault streams. The two models run through entirely separate
//! simulator code paths, so this equivalence is a genuine check that the
//! MSHR/bus machinery only changes timing when configured to.

use smt_sim::core::{DispatchPolicy, FaultClass, FaultConfig, FetchPolicy, SimConfig};
use smt_sim::mem::MemModel;
use smt_sim::stats::SimCounters;
use smt_sim::sweep::{run_spec_with_config, RunSpec};

/// Run a spec under the flat model and the degenerate non-blocking model
/// and return both counter sets, with the non-blocking-only `mem` section
/// zeroed on each side (the flat model never populates it).
fn run_both(spec: &RunSpec, mut cfg: SimConfig) -> (u64, SimCounters, u64, SimCounters) {
    cfg.hierarchy.model = MemModel::Flat;
    let flat = run_spec_with_config(spec, cfg.clone());
    cfg.hierarchy.model = MemModel::default();
    assert!(
        matches!(cfg.hierarchy.model, MemModel::NonBlocking(nb) if nb.is_degenerate()),
        "the default model must be the degenerate non-blocking one"
    );
    let nb = run_spec_with_config(spec, cfg);
    let mut fc = flat.counters.clone();
    let mut nc = nb.counters.clone();
    fc.mem = Default::default();
    nc.mem = Default::default();
    (flat.cycles, fc, nb.cycles, nc)
}

#[test]
fn degenerate_nonblocking_matches_flat_bit_for_bit() {
    for (benches, policy) in [
        (&["twolf", "mesa"][..], DispatchPolicy::TwoOpBlockOoo),
        (&["gcc", "art"][..], DispatchPolicy::Traditional),
        (&["gcc", "art", "crafty", "mesa"][..], DispatchPolicy::TwoOpBlock),
    ] {
        let spec = RunSpec::new(benches, 48, policy, 3_000, 7).with_warmup(500);
        let cfg = SimConfig::paper(48, policy);
        let (fcyc, fc, ncyc, nc) = run_both(&spec, cfg);
        assert_eq!(fcyc, ncyc, "{benches:?}/{policy:?}: cycle counts diverge");
        assert_eq!(fc, nc, "{benches:?}/{policy:?}: counters diverge");
    }
}

#[test]
fn degenerate_nonblocking_matches_flat_under_stall_and_flush_policies() {
    for fetch_policy in [FetchPolicy::Stall, FetchPolicy::Flush] {
        let spec = RunSpec::new(&["art", "twolf"], 48, DispatchPolicy::TwoOpBlockOoo, 2_000, 11);
        let mut cfg = SimConfig::paper(48, DispatchPolicy::TwoOpBlockOoo);
        cfg.fetch_policy = fetch_policy;
        let (fcyc, fc, ncyc, nc) = run_both(&spec, cfg);
        assert_eq!(fcyc, ncyc, "{fetch_policy:?}: cycle counts diverge");
        assert_eq!(fc, nc, "{fetch_policy:?}: counters diverge");
    }
}

#[test]
fn degenerate_nonblocking_matches_flat_with_cache_faults_injected() {
    // The CacheMissExtra fault path must fire identically through the MSHR
    // machinery: same number of injections (site hashes are keyed on
    // cycle/thread/trace_idx, which the equivalence above keeps aligned)
    // and same resulting timing.
    let spec = RunSpec::new(&["gcc", "twolf"], 48, DispatchPolicy::TwoOpBlockOoo, 2_500, 3);
    let mut cfg = SimConfig::paper(48, DispatchPolicy::TwoOpBlockOoo);
    // No budget cap: RunSpec's default warm-up would exhaust it before the
    // measurement window opens.
    let mut faults = FaultConfig::single(FaultClass::CacheMissExtra, 41);
    faults.class_mut(FaultClass::CacheMissExtra).rate_ppm = 300_000;
    cfg.faults = faults;
    let (fcyc, fc, ncyc, nc) = run_both(&spec, cfg);
    assert!(fc.faults.cache_extra_injected > 0, "fault config must actually fire");
    assert_eq!(fcyc, ncyc, "cycle counts diverge under cache-miss faults");
    assert_eq!(fc, nc, "counters diverge under cache-miss faults");
}

#[test]
fn per_thread_memory_counters_populate_identically_in_both_models() {
    let spec = RunSpec::new(&["art", "twolf"], 48, DispatchPolicy::TwoOpBlockOoo, 2_000, 5);
    let cfg = SimConfig::paper(48, DispatchPolicy::TwoOpBlockOoo);
    let (_, fc, _, nc) = run_both(&spec, cfg);
    assert_eq!(fc, nc, "counters diverge");
    // Beyond equality, the new attribution counters must be live at all on
    // a memory-heavy mix.
    let t0 = &fc.threads[0];
    assert!(t0.l1d_hits + t0.l1d_misses > 0, "loads must be attributed");
    assert!(t0.mem_busy_cycles > 0, "art must spend cycles with misses outstanding");
    assert!(t0.mlp() >= 1.0, "MLP is at least one whenever a miss is outstanding");
}
