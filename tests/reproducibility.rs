//! Reproducibility and metric-consistency tests across the whole stack.

use smt_sim::core::DispatchPolicy;
use smt_sim::stats::{fairness_hmean_weighted_ipc, harmonic_mean, speedup};
use smt_sim::sweep::{run_spec, thread_seed, RunSpec};
use smt_sim::workload::{mixes_for, MixTable};

#[test]
fn full_runs_are_bitwise_reproducible() {
    let spec = RunSpec::new(&["twolf", "mesa"], 48, DispatchPolicy::TwoOpBlockOoo, 5_000, 99);
    let a = run_spec(&spec);
    let b = run_spec(&spec);
    assert_eq!(a.counters, b.counters, "same spec must produce identical counters");
}

#[test]
fn per_thread_ipcs_sum_to_throughput() {
    let r = run_spec(&RunSpec::new(
        &["gcc", "art", "crafty"],
        64,
        DispatchPolicy::Traditional,
        5_000,
        1,
    ));
    let sum: f64 = r.per_thread_ipc.iter().sum();
    assert!((sum - r.ipc).abs() < 1e-9, "throughput {} != per-thread sum {}", r.ipc, sum);
}

#[test]
fn committed_never_exceeds_fetched_plus_warmup_carryover() {
    let r = run_spec(&RunSpec::new(&["gcc"], 64, DispatchPolicy::Traditional, 5_000, 1));
    let t = &r.counters.threads[0];
    // A small number of instructions fetched during warm-up commit during
    // the measurement window, so allow the in-flight window as slack.
    assert!(t.committed <= t.fetched + 200, "committed {} fetched {}", t.committed, t.fetched);
    assert!(t.issued >= t.committed.saturating_sub(200));
}

#[test]
fn stop_rule_and_counters_agree() {
    let r = run_spec(&RunSpec::new(&["mesa", "art"], 64, DispatchPolicy::Traditional, 4_000, 1));
    assert!(r.outcome_target_reached);
    let max = r.counters.threads.iter().map(|t| t.committed).max().unwrap();
    assert!(max >= 4_000, "some thread must reach the commit target, max={max}");
}

#[test]
fn every_paper_mix_runs_on_every_policy() {
    // Smoke: all 36 mixes on all 3 policies at a small budget.
    for table in [MixTable::TwoThread, MixTable::ThreeThread, MixTable::FourThread] {
        for mix in mixes_for(table) {
            for policy in [
                DispatchPolicy::Traditional,
                DispatchPolicy::TwoOpBlock,
                DispatchPolicy::TwoOpBlockOoo,
            ] {
                let r =
                    run_spec(&RunSpec::new(&mix.benchmarks, 48, policy, 400, 3).with_warmup(300));
                assert!(
                    r.ipc > 0.0,
                    "{} / {} under {} produced zero IPC",
                    table.table_name(),
                    mix.name,
                    policy.name()
                );
            }
        }
    }
}

#[test]
fn seeds_are_reproducible_and_discriminating() {
    assert_eq!(thread_seed(1, "gcc", 0), thread_seed(1, "gcc", 0));
    let seeds: std::collections::HashSet<u64> = ["gcc", "art", "mesa"]
        .iter()
        .flat_map(|b| (0..4).map(move |t| thread_seed(7, b, t)))
        .collect();
    assert_eq!(seeds.len(), 12, "seeds must be unique per (benchmark, thread)");
}

#[test]
fn metric_helpers_compose() {
    let smt = [0.8, 0.4];
    let single = [1.0, 1.0];
    let f = fairness_hmean_weighted_ipc(&smt, &single).unwrap();
    let h = harmonic_mean(&[0.8, 0.4]).unwrap();
    assert!((f - h).abs() < 1e-12);
    assert!((speedup(2.0, 1.0) - 2.0).abs() < 1e-12);
}

#[test]
fn facade_reexports_are_usable() {
    // The facade crate must expose every subsystem.
    let _ = smt_sim::isa::OpClass::IntAlu;
    let _ = smt_sim::mem::HierarchyConfig::paper();
    let _ = smt_sim::predictor::GShareConfig::paper();
    let _ = smt_sim::core::SimConfig::default();
    let _ = smt_sim::workload::benchmark("gcc");
    let _ = smt_sim::sweep::IQ_SIZES;
}
