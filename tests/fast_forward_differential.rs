//! Differential tests for the idle-cycle fast-forward.
//!
//! The fast-forward (see DESIGN.md) skips stretches of provably idle
//! cycles in bulk, replaying the per-cycle counter deltas arithmetically.
//! Its contract is *bit-for-bit* equivalence: every counter — cycles,
//! per-thread pipeline and memory statistics, fault streams — must match
//! the plain cycle-by-cycle run exactly, across all dispatch policies,
//! both memory models (including finite MSHRs and a contended bus), the
//! STALL/FLUSH fetch policies, and under injected faults.

use smt_sim::core::{
    DeadlockMode, DispatchPolicy, FaultClass, FaultConfig, FetchPolicy, RunOutcome, SimConfig,
    Simulator,
};
use smt_sim::mem::{MemModel, NonBlockingConfig};
use smt_sim::stats::SimCounters;
use smt_sim::sweep::{run_spec_with_config, RunSpec};
use smt_sim::workload::{benchmark, InstGenerator, SyntheticGen};

/// Run a spec with the fast-forward enabled and disabled and return both
/// (cycles, counters) pairs.
fn run_both(spec: &RunSpec, mut cfg: SimConfig) -> (u64, SimCounters, u64, SimCounters) {
    cfg.fast_forward = false;
    let slow = run_spec_with_config(spec, cfg.clone());
    cfg.fast_forward = true;
    let fast = run_spec_with_config(spec, cfg);
    (slow.cycles, slow.counters, fast.cycles, fast.counters)
}

fn assert_identical(label: &str, spec: &RunSpec, cfg: SimConfig) {
    let (scyc, sc, fcyc, fc) = run_both(spec, cfg);
    assert_eq!(scyc, fcyc, "{label}: cycle counts diverge");
    assert_eq!(sc, fc, "{label}: counters diverge");
}

#[test]
fn fast_forward_is_bit_for_bit_across_dispatch_policies_and_memory_models() {
    // Both memory models matter: the flat model has no MSHR state, so a
    // fetch attempt that misses the I-cache is invisible to everything but
    // the fetch-quiescence check (a historical fast-forward bug — threads
    // left unpicked by the fetch-port limit had their cold misses skipped
    // over entirely).
    for policy in
        [DispatchPolicy::Traditional, DispatchPolicy::TwoOpBlock, DispatchPolicy::TwoOpBlockOoo]
    {
        for flat in [false, true] {
            let spec = RunSpec::new(&["art", "twolf"], 48, policy, 3_000, 7).with_warmup(500);
            let mut cfg = SimConfig::paper(48, policy);
            if flat {
                cfg.hierarchy.model = MemModel::Flat;
            }
            assert_identical(&format!("{policy:?}/flat={flat}"), &spec, cfg);
        }
    }
}

#[test]
fn fast_forward_is_bit_for_bit_on_a_four_thread_flat_mix() {
    // The configuration that exposed the fetch-quiescence bug: four
    // threads, two fetch ports, flat memory — cold-start I-cache misses
    // arrive staggered as the port limit rotates across threads.
    let spec =
        RunSpec::new(&["gcc", "art", "crafty", "mesa"], 48, DispatchPolicy::TwoOpBlock, 3_000, 7)
            .with_warmup(500);
    let mut cfg = SimConfig::paper(48, DispatchPolicy::TwoOpBlock);
    cfg.hierarchy.model = MemModel::Flat;
    assert_identical("4t-flat", &spec, cfg);
}

#[test]
fn fast_forward_is_bit_for_bit_under_stall_and_flush_fetch() {
    // STALL parks whole threads on outstanding misses — the configuration
    // with the longest idle stretches, i.e. the one the fast-forward
    // accelerates most.
    for fetch_policy in [FetchPolicy::Stall, FetchPolicy::Flush] {
        let spec = RunSpec::new(&["art", "twolf"], 48, DispatchPolicy::TwoOpBlockOoo, 2_000, 11);
        let mut cfg = SimConfig::paper(48, DispatchPolicy::TwoOpBlockOoo);
        cfg.fetch_policy = fetch_policy;
        assert_identical(&format!("{fetch_policy:?}"), &spec, cfg);
    }
}

#[test]
fn fast_forward_is_bit_for_bit_under_mlp_gate_and_ilp_yield_fetch() {
    // The new sensor-driven policies: MLP-GATE parks threads on a timed
    // gate whose release must be a calendar stop, and ILP-YIELD rolls its
    // scoring windows lazily — both must replay exactly across jumps, on
    // both memory models.
    for fetch_policy in [FetchPolicy::MlpGate, FetchPolicy::IlpYield] {
        for flat in [false, true] {
            let spec =
                RunSpec::new(&["art", "twolf"], 48, DispatchPolicy::TwoOpBlockOoo, 2_000, 11);
            let mut cfg = SimConfig::paper(48, DispatchPolicy::TwoOpBlockOoo);
            cfg.fetch_policy = fetch_policy;
            if flat {
                cfg.hierarchy.model = MemModel::Flat;
            }
            assert_identical(&format!("{fetch_policy:?}/flat={flat}"), &spec, cfg);
        }
    }
}

#[test]
fn fast_forward_mlp_gate_actually_jumps() {
    // The gate must not silently veto the fast path: a miss-heavy
    // MLP-GATE run has long stretches where every thread is gated, and
    // the calendar entry on the gate release is what lets them skip.
    let spec = RunSpec::new(&["art", "art"], 48, DispatchPolicy::Traditional, 2_000, 21);
    let mut cfg = SimConfig::paper(48, DispatchPolicy::Traditional);
    cfg.fetch_policy = FetchPolicy::MlpGate;
    cfg.fast_forward = false;
    let slow = run_spec_with_config(&spec, cfg.clone());
    cfg.fast_forward = true;
    let fast = run_spec_with_config(&spec, cfg);
    assert_eq!(slow.cycles, fast.cycles, "mlp-jump: cycle counts diverge");
    assert_eq!(slow.counters, fast.counters, "mlp-jump: counters diverge");
    assert!(
        fast.counters.threads.iter().any(|t| t.mlp_gate_cycles > 0),
        "the gate never engaged — the run does not exercise MLP-GATE"
    );
    assert!(fast.ff_skipped_cycles > 0, "MLP-GATE run skipped nothing — gate vetoes the fast path");
}

#[test]
fn fast_forward_is_bit_for_bit_new_policies_with_finite_mshrs_and_faults() {
    // The new policies crossed with the nastiest memory system: finite
    // MSHRs, a slow bus, a small write buffer, and injected faults that
    // stretch miss latencies (moving the gate's release cycle) and drop
    // wakeups (decoupling the fill event from the gate timestamp).
    for fetch_policy in [FetchPolicy::MlpGate, FetchPolicy::IlpYield] {
        let spec = RunSpec::new(
            &["gcc", "art", "crafty", "twolf"],
            48,
            DispatchPolicy::TwoOpBlockOoo,
            2_000,
            5,
        );
        let mut cfg = SimConfig::paper(48, DispatchPolicy::TwoOpBlockOoo);
        cfg.fetch_policy = fetch_policy;
        cfg.hierarchy.model = MemModel::NonBlocking(NonBlockingConfig {
            l1i_mshrs: 2,
            l1d_mshrs: 4,
            l2_mshrs: 4,
            bus_cycles_per_transfer: 8,
            write_buffer_entries: 4,
            write_buffer_drain_per_cycle: 1,
        });
        let mut faults = FaultConfig::single(FaultClass::CacheMissExtra, 29);
        faults.class_mut(FaultClass::CacheMissExtra).rate_ppm = 200_000;
        faults.class_mut(FaultClass::WakeupDrop).rate_ppm = 50_000;
        cfg.faults = faults;
        let (scyc, sc, fcyc, fc) = run_both(&spec, cfg);
        assert!(sc.faults.total_injected() > 0, "fault config must actually fire");
        assert_eq!(scyc, fcyc, "{fetch_policy:?}/mshr/faults: cycle counts diverge");
        assert_eq!(sc, fc, "{fetch_policy:?}/mshr/faults: counters diverge");
    }
}

#[test]
fn fast_forward_is_bit_for_bit_with_finite_mshrs_and_slow_bus() {
    // A constrained memory system: few MSHRs, a slow contended bus, and a
    // small write buffer. Fills and write-buffer drains are the wake
    // sources the skip bound must respect exactly.
    let spec = RunSpec::new(&["art", "art", "twolf"], 48, DispatchPolicy::TwoOpBlockOoo, 2_000, 13);
    let mut cfg = SimConfig::paper(48, DispatchPolicy::TwoOpBlockOoo);
    cfg.hierarchy.model = MemModel::NonBlocking(NonBlockingConfig {
        l1i_mshrs: 2,
        l1d_mshrs: 4,
        l2_mshrs: 4,
        bus_cycles_per_transfer: 8,
        write_buffer_entries: 4,
        write_buffer_drain_per_cycle: 1,
    });
    assert_identical("finite-mshr/slow-bus", &spec, cfg);
}

#[test]
fn fast_forward_is_bit_for_bit_under_injected_faults() {
    // Dropped wakeups schedule delayed re-broadcasts — a pop-and-reschedule
    // the activity signature must see — and extra cache-miss latency
    // stretches exactly the idle windows being skipped.
    let spec = RunSpec::new(&["gcc", "twolf"], 48, DispatchPolicy::TwoOpBlockOoo, 2_500, 3);
    let mut cfg = SimConfig::paper(48, DispatchPolicy::TwoOpBlockOoo);
    let mut faults = FaultConfig::single(FaultClass::CacheMissExtra, 41);
    faults.class_mut(FaultClass::CacheMissExtra).rate_ppm = 300_000;
    faults.class_mut(FaultClass::WakeupDrop).rate_ppm = 50_000;
    cfg.faults = faults;
    let (scyc, sc, fcyc, fc) = run_both(&spec, cfg);
    assert!(sc.faults.cache_extra_injected > 0, "fault config must actually fire");
    assert_eq!(scyc, fcyc, "cycle counts diverge under faults");
    assert_eq!(sc, fc, "counters diverge under faults");
}

#[test]
fn fast_forward_is_bit_for_bit_under_watchdog_recovery() {
    // The watchdog decrements through idle windows; the skip bound must
    // stop short of the flush so recovery fires on the exact same cycle.
    let spec = RunSpec::new(&["art", "twolf"], 16, DispatchPolicy::Traditional, 1_500, 9);
    let mut cfg = SimConfig::paper(16, DispatchPolicy::Traditional);
    cfg.deadlock = DeadlockMode::Watchdog { timeout: 64 };
    assert_identical("watchdog", &spec, cfg);
}

#[test]
fn fast_forward_single_thread_memory_bound() {
    // One STALL-fetch thread on a miss-heavy benchmark: the machine spends
    // most of its time fully idle, so virtually every cycle is skippable.
    let spec = RunSpec::new(&["art"], 48, DispatchPolicy::Traditional, 2_000, 21);
    let mut cfg = SimConfig::paper(48, DispatchPolicy::Traditional);
    cfg.fetch_policy = FetchPolicy::Stall;
    assert_identical("1t-membound", &spec, cfg);
}

#[test]
fn fast_forward_is_bit_for_bit_under_round_robin_fetch() {
    // Round-robin used to be carved out of the fast-forward entirely
    // because its cursor advanced once per *executed* cycle, so a jump of
    // k cycles left it k positions behind the plain run. The fix rotates
    // the cursor by the jump length; these differentials pin that the
    // carve-out is gone and the rotation is exact under every policy.
    for policy in
        [DispatchPolicy::Traditional, DispatchPolicy::TwoOpBlock, DispatchPolicy::TwoOpBlockOoo]
    {
        for flat in [false, true] {
            let spec = RunSpec::new(&["art", "twolf"], 48, policy, 3_000, 7).with_warmup(500);
            let mut cfg = SimConfig::paper(48, policy);
            cfg.fetch_policy = FetchPolicy::RoundRobin;
            if flat {
                cfg.hierarchy.model = MemModel::Flat;
            }
            assert_identical(&format!("rr/{policy:?}/flat={flat}"), &spec, cfg);
        }
    }
}

#[test]
fn fast_forward_round_robin_actually_jumps() {
    // Guard against silently re-growing the carve-out: a miss-heavy
    // round-robin run must both match the plain run *and* have skipped a
    // substantial number of cycles — only the skip counter can prove the
    // fast path really ran.
    let spec = RunSpec::new(&["art", "art"], 48, DispatchPolicy::Traditional, 2_000, 21);
    let mut cfg = SimConfig::paper(48, DispatchPolicy::Traditional);
    cfg.fetch_policy = FetchPolicy::RoundRobin;
    cfg.fast_forward = false;
    let slow = run_spec_with_config(&spec, cfg.clone());
    cfg.fast_forward = true;
    let fast = run_spec_with_config(&spec, cfg);
    assert_eq!(slow.cycles, fast.cycles, "rr-jump: cycle counts diverge");
    assert_eq!(slow.counters, fast.counters, "rr-jump: counters diverge");
    assert_eq!(slow.ff_skipped_cycles, 0, "disabled fast-forward must not skip");
    assert!(fast.ff_skipped_cycles > 0, "round-robin run skipped nothing — the carve-out is back");
}

#[test]
fn fast_forward_is_bit_for_bit_round_robin_with_finite_mshrs_and_faults() {
    // The nastiest combination in one run: round-robin cursor rotation,
    // finite MSHRs and a contended bus as wake sources, and injected
    // faults perturbing both miss latencies and wakeup delivery.
    let spec = RunSpec::new(
        &["gcc", "art", "crafty", "twolf"],
        48,
        DispatchPolicy::TwoOpBlockOoo,
        2_000,
        5,
    );
    let mut cfg = SimConfig::paper(48, DispatchPolicy::TwoOpBlockOoo);
    cfg.fetch_policy = FetchPolicy::RoundRobin;
    cfg.hierarchy.model = MemModel::NonBlocking(NonBlockingConfig {
        l1i_mshrs: 2,
        l1d_mshrs: 4,
        l2_mshrs: 4,
        bus_cycles_per_transfer: 8,
        write_buffer_entries: 4,
        write_buffer_drain_per_cycle: 1,
    });
    let mut faults = FaultConfig::single(FaultClass::CacheMissExtra, 29);
    faults.class_mut(FaultClass::CacheMissExtra).rate_ppm = 200_000;
    faults.class_mut(FaultClass::WakeupDrop).rate_ppm = 50_000;
    cfg.faults = faults;
    let (scyc, sc, fcyc, fc) = run_both(&spec, cfg);
    assert!(sc.faults.total_injected() > 0, "fault config must actually fire");
    assert_eq!(scyc, fcyc, "rr/mshr/faults: cycle counts diverge");
    assert_eq!(sc, fc, "rr/mshr/faults: counters diverge");
}

#[test]
fn fast_forward_is_bit_for_bit_with_delayed_wakeup_redeliveries() {
    // A dropped wakeup schedules a re-broadcast at `now +
    // wakeup_redeliver_delay`. With a delay far longer than any other
    // pending event, that redelivery is frequently the *only* wake source
    // in the calendar — if it failed to register, the clock would jump
    // straight past it and the dependent instruction would hang or retire
    // on a different cycle.
    let spec = RunSpec::new(&["gcc", "twolf"], 48, DispatchPolicy::TwoOpBlockOoo, 2_500, 17);
    let mut cfg = SimConfig::paper(48, DispatchPolicy::TwoOpBlockOoo);
    let mut faults = FaultConfig::single(FaultClass::WakeupDrop, 53);
    faults.class_mut(FaultClass::WakeupDrop).rate_ppm = 400_000;
    faults.wakeup_redeliver_delay = 96;
    cfg.faults = faults;
    let (scyc, sc, fcyc, fc) = run_both(&spec, cfg);
    assert!(sc.faults.wakeup_redeliveries > 0, "redeliveries must actually happen");
    assert_eq!(scyc, fcyc, "redeliver: cycle counts diverge");
    assert_eq!(sc, fc, "redeliver: counters diverge");
}

/// A single STALL-fetch thread on a miss-heavy benchmark, built directly so
/// the boundary tests below can inspect `now()` at the stop point. Seed and
/// benchmark match `fast_forward_single_thread_memory_bound`, so the run is
/// dominated by long idle windows the fast-forward will jump across.
fn membound_sim(mutate: impl FnOnce(&mut SimConfig)) -> Simulator {
    let mut cfg = SimConfig::paper(48, DispatchPolicy::Traditional);
    cfg.fetch_policy = FetchPolicy::Stall;
    mutate(&mut cfg);
    let streams: Vec<Box<dyn InstGenerator>> =
        vec![Box::new(SyntheticGen::new(benchmark("art"), 0, 0xB07)) as Box<dyn InstGenerator>];
    Simulator::new(cfg, streams)
}

#[test]
fn fast_forward_observes_the_max_cycles_boundary_exactly() {
    // Sweep `max_cycles` one cycle at a time across a window of the run
    // that contains long idle stretches. Whichever cycle the limit falls
    // on — mid-jump, one cycle before a wake event, or exactly on one —
    // both runs must trip the limit on the same cycle with identical
    // counters. The calendar registers the limit with `land_on` (the run
    // loop checks `now >= max_cycles`), so landing exactly on it is legal
    // but overshooting by even one cycle is not.
    let mut any_skipped = 0u64;
    for max_cycles in 600..632 {
        let run = |ff: bool| {
            let mut sim = membound_sim(|c| {
                c.fast_forward = ff;
                c.max_cycles = max_cycles;
            });
            let out = sim.run(u64::MAX);
            assert!(out.is_wedged(), "max_cycles={max_cycles} ff={ff}: expected the cycle limit");
            let (_, skipped) = sim.ff_stats();
            (sim.now(), sim.counters().clone(), skipped)
        };
        let (snow, sc, _) = run(false);
        let (fnow, fc, skipped) = run(true);
        assert_eq!(snow, fnow, "max_cycles={max_cycles}: stop cycle diverges");
        assert_eq!(sc, fc, "max_cycles={max_cycles}: counters diverge");
        any_skipped += skipped;
    }
    assert!(any_skipped > 0, "the sweep never exercised a jump — boundary test is vacuous");
}

#[test]
fn fast_forward_observes_the_progress_check_boundary_exactly() {
    // A forward-progress timeout shorter than one main-memory round trip
    // wedges the run inside the first long miss window. The boundary sits
    // at `last_commit + timeout` — a moving target the calendar must
    // re-register after every commit — and both runs must diagnose the
    // wedge on exactly that cycle.
    for timeout in [96u64, 97, 101, 128] {
        let run = |ff: bool| {
            let mut sim = membound_sim(|c| {
                c.fast_forward = ff;
                c.progress_check_cycles = timeout;
            });
            let out = sim.run(u64::MAX);
            assert!(out.is_wedged(), "timeout={timeout} ff={ff}: expected a progress wedge");
            (sim.now(), sim.counters().clone())
        };
        let (snow, sc) = run(false);
        let (fnow, fc) = run(true);
        assert_eq!(snow, fnow, "timeout={timeout}: wedge cycle diverges");
        assert_eq!(sc, fc, "timeout={timeout}: counters diverge");
    }
}

#[test]
fn fast_forward_observes_the_watchdog_boundary_exactly() {
    // The deadlock watchdog's flush is a wake source: the skip must stop
    // strictly before the flush cycle so recovery executes for real.
    // Sweeping adjacent timeouts walks the flush across jump boundaries,
    // including the one-cycle-past-a-wake-event positions.
    for timeout in [63u32, 64, 65, 67] {
        let spec = RunSpec::new(&["art", "twolf"], 16, DispatchPolicy::Traditional, 1_500, 9);
        let mut cfg = SimConfig::paper(16, DispatchPolicy::Traditional);
        cfg.deadlock = DeadlockMode::Watchdog { timeout };
        assert_identical(&format!("watchdog-{timeout}"), &spec, cfg);
    }
}

#[test]
fn an_expired_abort_budget_stops_before_any_jump() {
    // The abort hook is polled on loop *iterations*, not cycle numbers — a
    // calendar jump can step `now` over any particular alignment forever.
    // An already-expired budget must abort before the first cycle runs.
    let mut sim = membound_sim(|c| c.fast_forward = true);
    let out = sim.run_with_abort(u64::MAX, || true);
    assert!(matches!(out, RunOutcome::Aborted), "expected an immediate abort, got {out:?}");
    assert_eq!(sim.now(), 0, "abort must fire before the first cycle or jump");
}
