//! Differential tests for the idle-cycle fast-forward.
//!
//! The fast-forward (see DESIGN.md) skips stretches of provably idle
//! cycles in bulk, replaying the per-cycle counter deltas arithmetically.
//! Its contract is *bit-for-bit* equivalence: every counter — cycles,
//! per-thread pipeline and memory statistics, fault streams — must match
//! the plain cycle-by-cycle run exactly, across all dispatch policies,
//! both memory models (including finite MSHRs and a contended bus), the
//! STALL/FLUSH fetch policies, and under injected faults.

use smt_sim::core::{
    DeadlockMode, DispatchPolicy, FaultClass, FaultConfig, FetchPolicy, SimConfig,
};
use smt_sim::mem::{MemModel, NonBlockingConfig};
use smt_sim::stats::SimCounters;
use smt_sim::sweep::{run_spec_with_config, RunSpec};

/// Run a spec with the fast-forward enabled and disabled and return both
/// (cycles, counters) pairs.
fn run_both(spec: &RunSpec, mut cfg: SimConfig) -> (u64, SimCounters, u64, SimCounters) {
    cfg.fast_forward = false;
    let slow = run_spec_with_config(spec, cfg.clone());
    cfg.fast_forward = true;
    let fast = run_spec_with_config(spec, cfg);
    (slow.cycles, slow.counters, fast.cycles, fast.counters)
}

fn assert_identical(label: &str, spec: &RunSpec, cfg: SimConfig) {
    let (scyc, sc, fcyc, fc) = run_both(spec, cfg);
    assert_eq!(scyc, fcyc, "{label}: cycle counts diverge");
    assert_eq!(sc, fc, "{label}: counters diverge");
}

#[test]
fn fast_forward_is_bit_for_bit_across_dispatch_policies_and_memory_models() {
    // Both memory models matter: the flat model has no MSHR state, so a
    // fetch attempt that misses the I-cache is invisible to everything but
    // the fetch-quiescence check (a historical fast-forward bug — threads
    // left unpicked by the fetch-port limit had their cold misses skipped
    // over entirely).
    for policy in
        [DispatchPolicy::Traditional, DispatchPolicy::TwoOpBlock, DispatchPolicy::TwoOpBlockOoo]
    {
        for flat in [false, true] {
            let spec = RunSpec::new(&["art", "twolf"], 48, policy, 3_000, 7).with_warmup(500);
            let mut cfg = SimConfig::paper(48, policy);
            if flat {
                cfg.hierarchy.model = MemModel::Flat;
            }
            assert_identical(&format!("{policy:?}/flat={flat}"), &spec, cfg);
        }
    }
}

#[test]
fn fast_forward_is_bit_for_bit_on_a_four_thread_flat_mix() {
    // The configuration that exposed the fetch-quiescence bug: four
    // threads, two fetch ports, flat memory — cold-start I-cache misses
    // arrive staggered as the port limit rotates across threads.
    let spec =
        RunSpec::new(&["gcc", "art", "crafty", "mesa"], 48, DispatchPolicy::TwoOpBlock, 3_000, 7)
            .with_warmup(500);
    let mut cfg = SimConfig::paper(48, DispatchPolicy::TwoOpBlock);
    cfg.hierarchy.model = MemModel::Flat;
    assert_identical("4t-flat", &spec, cfg);
}

#[test]
fn fast_forward_is_bit_for_bit_under_stall_and_flush_fetch() {
    // STALL parks whole threads on outstanding misses — the configuration
    // with the longest idle stretches, i.e. the one the fast-forward
    // accelerates most.
    for fetch_policy in [FetchPolicy::Stall, FetchPolicy::Flush] {
        let spec = RunSpec::new(&["art", "twolf"], 48, DispatchPolicy::TwoOpBlockOoo, 2_000, 11);
        let mut cfg = SimConfig::paper(48, DispatchPolicy::TwoOpBlockOoo);
        cfg.fetch_policy = fetch_policy;
        assert_identical(&format!("{fetch_policy:?}"), &spec, cfg);
    }
}

#[test]
fn fast_forward_is_bit_for_bit_with_finite_mshrs_and_slow_bus() {
    // A constrained memory system: few MSHRs, a slow contended bus, and a
    // small write buffer. Fills and write-buffer drains are the wake
    // sources the skip bound must respect exactly.
    let spec = RunSpec::new(&["art", "art", "twolf"], 48, DispatchPolicy::TwoOpBlockOoo, 2_000, 13);
    let mut cfg = SimConfig::paper(48, DispatchPolicy::TwoOpBlockOoo);
    cfg.hierarchy.model = MemModel::NonBlocking(NonBlockingConfig {
        l1i_mshrs: 2,
        l1d_mshrs: 4,
        l2_mshrs: 4,
        bus_cycles_per_transfer: 8,
        write_buffer_entries: 4,
        write_buffer_drain_per_cycle: 1,
    });
    assert_identical("finite-mshr/slow-bus", &spec, cfg);
}

#[test]
fn fast_forward_is_bit_for_bit_under_injected_faults() {
    // Dropped wakeups schedule delayed re-broadcasts — a pop-and-reschedule
    // the activity signature must see — and extra cache-miss latency
    // stretches exactly the idle windows being skipped.
    let spec = RunSpec::new(&["gcc", "twolf"], 48, DispatchPolicy::TwoOpBlockOoo, 2_500, 3);
    let mut cfg = SimConfig::paper(48, DispatchPolicy::TwoOpBlockOoo);
    let mut faults = FaultConfig::single(FaultClass::CacheMissExtra, 41);
    faults.class_mut(FaultClass::CacheMissExtra).rate_ppm = 300_000;
    faults.class_mut(FaultClass::WakeupDrop).rate_ppm = 50_000;
    cfg.faults = faults;
    let (scyc, sc, fcyc, fc) = run_both(&spec, cfg);
    assert!(sc.faults.cache_extra_injected > 0, "fault config must actually fire");
    assert_eq!(scyc, fcyc, "cycle counts diverge under faults");
    assert_eq!(sc, fc, "counters diverge under faults");
}

#[test]
fn fast_forward_is_bit_for_bit_under_watchdog_recovery() {
    // The watchdog decrements through idle windows; the skip bound must
    // stop short of the flush so recovery fires on the exact same cycle.
    let spec = RunSpec::new(&["art", "twolf"], 16, DispatchPolicy::Traditional, 1_500, 9);
    let mut cfg = SimConfig::paper(16, DispatchPolicy::Traditional);
    cfg.deadlock = DeadlockMode::Watchdog { timeout: 64 };
    assert_identical("watchdog", &spec, cfg);
}

#[test]
fn fast_forward_single_thread_memory_bound() {
    // One STALL-fetch thread on a miss-heavy benchmark: the machine spends
    // most of its time fully idle, so virtually every cycle is skippable.
    let spec = RunSpec::new(&["art"], 48, DispatchPolicy::Traditional, 2_000, 21);
    let mut cfg = SimConfig::paper(48, DispatchPolicy::Traditional);
    cfg.fetch_policy = FetchPolicy::Stall;
    assert_identical("1t-membound", &spec, cfg);
}
