//! Facade crate: re-exports the whole SMT out-of-order-dispatch simulator
//! workspace under one roof, so examples and integration tests can use a
//! single dependency.
//!
//! See the README for an overview and `smt_core` for the pipeline model.

pub use smt_core as core;
pub use smt_isa as isa;
pub use smt_mem as mem;
pub use smt_predictor as predictor;
pub use smt_stats as stats;
pub use smt_sweep as sweep;
pub use smt_workload as workload;
