//! Compare SMT fetch policies (§6 related work) on a memory-pressure mix:
//! round-robin, I-Count, STALL and FLUSH.
//!
//! ```sh
//! cargo run --release --example fetch_policies
//! ```

use smt_sim::core::config::FetchPolicy;
use smt_sim::core::{DispatchPolicy, SimConfig};
use smt_sim::sweep::runner::{run_spec_with_config, RunSpec};

fn main() {
    let benches = ["swim", "gap"]; // memory-bound + execution-bound
    let iq = 32;
    println!("workload: {} @ {iq}-entry IQ, traditional scheduler", benches.join(", "));
    println!(
        "{:<14}{:>9}{:>13}{:>13}{:>11}",
        "fetch policy", "IPC", "swim IPC", "gap IPC", "flushes"
    );
    for policy in
        [FetchPolicy::RoundRobin, FetchPolicy::ICount, FetchPolicy::Stall, FetchPolicy::Flush]
    {
        let spec = RunSpec::new(&benches, iq, DispatchPolicy::Traditional, 30_000, 1);
        let mut cfg = SimConfig::paper(iq, DispatchPolicy::Traditional);
        cfg.fetch_policy = policy;
        let r = run_spec_with_config(&spec, cfg);
        println!(
            "{:<14}{:>9.3}{:>13.3}{:>13.3}{:>11}",
            policy.name(),
            r.ipc,
            r.per_thread_ipc[0],
            r.per_thread_ipc[1],
            r.counters.fetch_policy_flushes,
        );
    }
    println!(
        "\nSTALL and FLUSH gate the memory-bound thread while its misses are outstanding,\n\
         freeing shared queue space for the execution-bound thread (Tullsen & Brown);\n\
         FLUSH additionally squashes the stalled thread's in-flight instructions."
    );
}
