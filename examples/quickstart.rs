//! Quickstart: simulate a 2-thread SMT workload under the paper's proposed
//! scheduler and print the headline statistics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use smt_sim::core::{DispatchPolicy, SimConfig, Simulator};
use smt_sim::workload::{benchmark, InstGenerator, SyntheticGen};

fn main() {
    // Table 1 machine with a 64-entry issue queue running the paper's
    // 2OP_BLOCK + out-of-order dispatch scheduler.
    let cfg = SimConfig::paper(64, DispatchPolicy::TwoOpBlockOoo);

    // Co-schedule a medium-ILP integer benchmark with a memory-bound one
    // (Table 3, Mix 10: equake + gcc).
    let streams: Vec<Box<dyn InstGenerator>> = vec![
        Box::new(SyntheticGen::new(benchmark("equake"), 0, 42)),
        Box::new(SyntheticGen::new(benchmark("gcc"), 1, 42)),
    ];

    let mut sim = Simulator::new(cfg, streams);

    // Warm caches and predictors, then measure (the paper fast-forwards
    // with SimPoints; we warm up in simulation).
    sim.run_until_all_committed(10_000);
    sim.reset_measurement();
    sim.run(50_000);

    let c = sim.counters();
    println!("simulated {} cycles", c.cycles);
    println!("throughput IPC: {:.3}", c.throughput_ipc());
    for (t, ipc) in c.per_thread_ipc().iter().enumerate() {
        let tc = &c.threads[t];
        println!(
            "  thread {t}: IPC {ipc:.3}, {} committed, {:.1}% branch mispredicts, mean IQ wait {:.1} cycles",
            tc.committed,
            tc.mispredict_rate() * 100.0,
            tc.mean_iq_residency(),
        );
    }
    println!("mean IQ occupancy: {:.1} / {}", c.mean_iq_occupancy(), sim.config().iq_size);
    println!(
        "dispatch stalled with every thread NDI-blocked in {:.2}% of cycles",
        c.all_stall_fraction() * 100.0
    );
}
