//! Compare all four dispatch policies on one multithreaded mix — the core
//! experiment of the paper, in miniature.
//!
//! ```sh
//! cargo run --release --example scheduler_comparison [-- <mix benchmarks...>]
//! ```

use smt_sim::core::DispatchPolicy;
use smt_sim::sweep::{run_spec, RunSpec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let benches: Vec<String> = if args.is_empty() {
        // Table 2, Mix 7: two memory-bound threads and two execution-bound
        // threads — the mix where balancing ILP and TLP matters most.
        ["parser", "equake", "mesa", "vortex"].iter().map(|s| s.to_string()).collect()
    } else {
        args
    };
    println!("workload: {}", benches.join(", "));
    println!(
        "{:<26}{:>10}{:>14}{:>16}{:>18}",
        "policy", "IPC", "IQ wait(cyc)", "all-NDI stall", "HDIs dispatched"
    );

    let mut baseline = None;
    for policy in [
        DispatchPolicy::Traditional,
        DispatchPolicy::TwoOpBlock,
        DispatchPolicy::TwoOpBlockOoo,
        DispatchPolicy::TwoOpBlockOooFiltered,
    ] {
        let spec = RunSpec::new(&benches, 64, policy, 30_000, 1);
        let r = run_spec(&spec);
        let hdis: u64 = r.counters.threads.iter().map(|t| t.hdis_dispatched).sum();
        println!(
            "{:<26}{:>10.3}{:>14.1}{:>15.1}%{:>18}",
            policy.name(),
            r.ipc,
            r.mean_iq_residency,
            r.all_stall_frac * 100.0,
            hdis,
        );
        if policy == DispatchPolicy::Traditional {
            baseline = Some(r.ipc);
        }
    }
    if let Some(base) = baseline {
        println!("\n(speedups are relative to the traditional scheduler at {base:.3} IPC)");
    }
}
