//! Sweep MSHR entries and memory-bus bandwidth under the non-blocking
//! memory model and watch memory-level parallelism (MLP) respond — the
//! resource axis the paper's flat-latency memory model abstracts away.
//!
//! With one MSHR per level every cache miss serialises, MLP pins near 1,
//! and both schedulers crawl. As the MSHR file grows, memory-bound threads
//! expose overlapping misses, MLP climbs, and out-of-order dispatch pulls
//! ahead of the traditional scheduler because it can keep feeding the
//! memory system while an NDI blocks the in-order dispatch point.
//!
//! ```sh
//! cargo run --release --example mlp_study
//! ```

use smt_sim::core::{DispatchPolicy, SimConfig};
use smt_sim::mem::{MemModel, NonBlockingConfig};
use smt_sim::sweep::{run_spec_with_config_recorded, RunSpec};

const IQ: usize = 64;
const TARGET: u64 = 20_000;

fn run(benches: &[&str], policy: DispatchPolicy, mshrs: u32, bus: u32) -> (f64, f64, u64) {
    let spec = RunSpec::new(benches, IQ, policy, TARGET, 1);
    let mut cfg = SimConfig::paper(IQ, policy);
    cfg.hierarchy.model = MemModel::NonBlocking(NonBlockingConfig {
        l1d_mshrs: mshrs,
        l2_mshrs: mshrs.saturating_mul(2),
        bus_cycles_per_transfer: bus,
        ..NonBlockingConfig::default()
    });
    let rec = run_spec_with_config_recorded(&spec, cfg);
    if let Some(w) = rec.wedge {
        eprintln!("  WEDGED ({benches:?} mshrs={mshrs} bus={bus}): {w}");
    }
    let c = &rec.result.counters;
    let busy: u64 = c.threads.iter().map(|t| t.mem_busy_cycles).sum();
    let mlp_sum: u64 = c.threads.iter().map(|t| t.mlp_sum).sum();
    let mlp = if busy == 0 { 0.0 } else { mlp_sum as f64 / busy as f64 };
    let defers: u64 = c.threads.iter().map(|t| t.mshr_full_defers).sum();
    (rec.result.ipc, mlp, defers)
}

fn main() {
    let knob = |v: u32| if v == 0 { "inf".to_string() } else { v.to_string() };
    for (label, benches) in [
        ("2 threads, memory-bound (art + swim)", &["art", "swim"][..]),
        ("4 threads, mixed (art, swim, gcc, crafty)", &["art", "swim", "gcc", "crafty"][..]),
    ] {
        println!("== {label} ==");
        println!(
            "{:<8}{:<6}{:>14}{:>14}{:>10}{:>8}{:>12}",
            "mshrs", "bus", "trad IPC", "ooo IPC", "ooo gain", "MLP", "defers"
        );
        for mshrs in [1u32, 4, 8, 0] {
            for bus in [0u32, 8] {
                let (trad, _, _) = run(benches, DispatchPolicy::Traditional, mshrs, bus);
                let (ooo, mlp, defers) = run(benches, DispatchPolicy::TwoOpBlockOoo, mshrs, bus);
                let gain = if trad > 0.0 { (ooo / trad - 1.0) * 100.0 } else { 0.0 };
                println!(
                    "{:<8}{:<6}{:>14.3}{:>14.3}{:>9.1}%{:>8.2}{:>12}",
                    knob(mshrs),
                    knob(bus),
                    trad,
                    ooo,
                    gain,
                    mlp,
                    defers
                );
            }
        }
        println!();
    }
    println!(
        "MLP rises with the MSHR budget and the OOO-dispatch advantage moves with it:\n\
         starved MSHRs serialise every miss (nothing to overlap, schedulers converge),\n\
         while a deep MSHR file lets out-of-order dispatch keep misses in flight past\n\
         a blocked NDI. A slow bus (8 cycles/transfer) adds queueing on top; see\n\
         DESIGN.md §7 and `paperbench mlp` for the journaled version of this sweep."
    );
}
