//! Sweep the issue-queue size for one workload under every scheduler —
//! a single-mix slice through Figures 3/5/7 of the paper.
//!
//! ```sh
//! cargo run --release --example iq_scaling
//! ```

use smt_sim::core::DispatchPolicy;
use smt_sim::sweep::{run_spec, RunSpec, IQ_SIZES};

fn main() {
    let benches = ["twolf", "bzip2"]; // Table 3, Mix 9: 1 LOW + 1 MED.
    println!("workload: {}", benches.join(", "));
    println!("IPC by scheduler and IQ size:");
    print!("{:<26}", "policy \\ IQ");
    for iq in IQ_SIZES {
        print!("{iq:>9}");
    }
    println!();
    for policy in
        [DispatchPolicy::Traditional, DispatchPolicy::TwoOpBlock, DispatchPolicy::TwoOpBlockOoo]
    {
        print!("{:<26}", policy.name());
        for iq in IQ_SIZES {
            let r = run_spec(&RunSpec::new(&benches, iq, policy, 20_000, 1));
            print!("{:>9.3}", r.ipc);
        }
        println!();
    }
    println!(
        "\nExpected shape (paper): 2OP_BLOCK trails the traditional scheduler on \
         2-thread workloads at every size;\nout-of-order dispatch recovers the loss and \
         wins at small queues, converging at 96+ entries."
    );
}
