//! Define a custom benchmark behaviour profile — beyond the built-in SPEC
//! CPU2000 models — and run it through the simulator.
//!
//! ```sh
//! cargo run --release --example custom_workload
//! ```

use smt_sim::core::{DispatchPolicy, SimConfig, Simulator};
use smt_sim::workload::{BenchmarkProfile, IlpClass, InstGenerator, SyntheticGen};

fn main() {
    // A pathological "linked-list walker": almost every load chases the
    // previous load's result through a working set far larger than the L2.
    let list_walker = BenchmarkProfile {
        name: "list-walker".into(),
        ilp: IlpClass::Low,
        is_fp: false,
        frac_load: 0.40,
        frac_store: 0.05,
        frac_branch: 0.10,
        frac_int_mult: 0.0,
        frac_int_div: 0.0,
        frac_fp_add: 0.0,
        frac_fp_mult: 0.0,
        frac_fp_div: 0.0,
        frac_fp_sqrt: 0.0,
        mean_dep_distance: 2.0,
        two_src_frac: 0.5,
        working_set: 64 << 20,
        pointer_chase_frac: 0.8,
        l2_access_frac: 0.05,
        mem_access_frac: 0.5,
        branch_bias: 0.9,
        code_footprint: 2048,
    };
    list_walker.validate().expect("profile must be consistent");

    // A dense numeric kernel: cache-resident, long dependency distances.
    let kernel = BenchmarkProfile {
        name: "stencil-kernel".into(),
        ilp: IlpClass::High,
        is_fp: true,
        frac_load: 0.25,
        frac_store: 0.10,
        frac_branch: 0.05,
        frac_int_mult: 0.0,
        frac_int_div: 0.0,
        frac_fp_add: 0.25,
        frac_fp_mult: 0.18,
        frac_fp_div: 0.002,
        frac_fp_sqrt: 0.0,
        mean_dep_distance: 16.0,
        two_src_frac: 0.45,
        working_set: 16 * 1024,
        pointer_chase_frac: 0.0,
        l2_access_frac: 0.02,
        mem_access_frac: 0.001,
        branch_bias: 0.99,
        code_footprint: 1024,
    };
    kernel.validate().expect("profile must be consistent");

    for policy in
        [DispatchPolicy::Traditional, DispatchPolicy::TwoOpBlock, DispatchPolicy::TwoOpBlockOoo]
    {
        let cfg = SimConfig::paper(48, policy);
        let streams: Vec<Box<dyn InstGenerator>> = vec![
            Box::new(SyntheticGen::new(list_walker.clone(), 0, 7)),
            Box::new(SyntheticGen::new(kernel.clone(), 1, 7)),
        ];
        let mut sim = Simulator::new(cfg, streams);
        sim.run_until_all_committed(5_000);
        sim.reset_measurement();
        sim.run(40_000);
        let c = sim.counters();
        println!(
            "{:<16} IPC {:.3}  (walker {:.3}, kernel {:.3})  all-NDI stall {:.1}%",
            policy.name(),
            c.throughput_ipc(),
            c.per_thread_ipc()[0],
            c.per_thread_ipc()[1],
            c.all_stall_fraction() * 100.0,
        );
    }
    println!(
        "\nAn extreme ILP/TLP imbalance: the walker's chased loads produce streams of\n\
         two-non-ready-source instructions. 2OP_BLOCK refuses them at dispatch, which\n\
         shields the kernel (highest raw throughput, walker starved); the traditional\n\
         queue admits them and clogs; out-of-order dispatch sits between, spending some\n\
         of the kernel's bandwidth to keep servicing the walker's dispatch stream —\n\
         the ILP/TLP balance the paper's title refers to."
    );
}
