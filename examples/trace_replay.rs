//! Record a workload trace to a JSON-lines file and replay it — bitwise
//! identical results across runs, machines, and generator versions.
//!
//! ```sh
//! cargo run --release --example trace_replay
//! ```

use smt_sim::core::{DispatchPolicy, SimConfig, Simulator};
use smt_sim::workload::{benchmark, InstGenerator, Recorder, SyntheticGen, TraceFileReplay};

fn main() -> std::io::Result<()> {
    // 1. Run once with a recorder tee'd into the generator.
    let mut recorder = Recorder::new(SyntheticGen::new(benchmark("twolf"), 0, 123));
    let live_cycles = {
        // Pre-pull the instructions we intend to simulate so the recording
        // is complete, then replay them through the pipeline.
        let insts: Vec<_> = (0..30_000).map(|_| recorder.next_inst().unwrap()).collect();
        let mut sim = Simulator::new(
            SimConfig::paper(64, DispatchPolicy::TwoOpBlockOoo),
            vec![Box::new(smt_sim::workload::ProgramTrace::once(insts)) as Box<dyn InstGenerator>],
        );
        sim.run(u64::MAX);
        sim.counters().cycles
    };

    // 2. Save the trace.
    let path = std::env::temp_dir().join("twolf_trace.jsonl");
    let mut file = std::fs::File::create(&path)?;
    recorder.write_jsonl(&mut file)?;
    let bytes = std::fs::metadata(&path)?.len();
    println!("recorded {} instructions to {} ({} KiB)", 30_000, path.display(), bytes / 1024);

    // 3. Replay from the file: identical machine behaviour.
    let replay = TraceFileReplay::from_jsonl(std::io::BufReader::new(std::fs::File::open(&path)?))?;
    println!("replaying {} instructions", replay.len());
    let mut sim = Simulator::new(
        SimConfig::paper(64, DispatchPolicy::TwoOpBlockOoo),
        vec![Box::new(replay) as Box<dyn InstGenerator>],
    );
    sim.run(u64::MAX);
    let replay_cycles = sim.counters().cycles;

    println!("live run: {live_cycles} cycles, replay: {replay_cycles} cycles");
    assert_eq!(live_cycles, replay_cycles, "replay must be cycle-exact");
    println!("cycle-exact ✓");
    Ok(())
}
