//! The paper's fairness metric (harmonic mean of weighted IPCs) across
//! schedulers: throughput alone hides starvation of slow threads.
//!
//! ```sh
//! cargo run --release --example fairness_study
//! ```

use smt_sim::core::DispatchPolicy;
use smt_sim::stats::{fairness, Fairness};
use smt_sim::sweep::{run_spec, RunSpec};

fn main() {
    let benches = ["swim", "gap"]; // Table 3, Mix 8: 1 LOW + 1 HIGH.
    let iq = 64;
    let target = 30_000;

    // Single-threaded reference IPCs on the same machine (the denominators
    // of the weighted-IPC metric).
    let singles: Vec<f64> = benches
        .iter()
        .map(|b| run_spec(&RunSpec::new(&[*b], iq, DispatchPolicy::Traditional, target, 1)).ipc)
        .collect();
    println!(
        "workload: {} (single-thread IPCs: {:.3}, {:.3})",
        benches.join(", "),
        singles[0],
        singles[1]
    );
    println!(
        "{:<26}{:>12}{:>12}{:>14}{:>12}",
        "policy", "IPC", "fairness", "slow thread", "fast thread"
    );

    for policy in
        [DispatchPolicy::Traditional, DispatchPolicy::TwoOpBlock, DispatchPolicy::TwoOpBlockOoo]
    {
        let r = run_spec(&RunSpec::new(&benches, iq, policy, target, 1));
        // `Starved` (a thread committed nothing — the worst possible
        // fairness) is reported by name, not as a bare 0.000 that could
        // pass for a rounding artifact.
        let fairness = match fairness(&r.per_thread_ipc, &singles) {
            Some(Fairness::Value(v)) => format!("{v:.3}"),
            Some(Fairness::Starved) => "STARVED".into(),
            None => "n/a".into(),
        };
        println!(
            "{:<26}{:>12.3}{:>12}{:>14.3}{:>12.3}",
            policy.name(),
            r.ipc,
            fairness,
            r.per_thread_ipc[0],
            r.per_thread_ipc[1],
        );
    }
    println!(
        "\nA fairness value of 1.0 means each thread runs as fast as it would alone;\n\
         the harmonic mean punishes schedulers that starve the slow thread to inflate\n\
         raw throughput (Luo et al., as used in the paper's Figures 4/6/8)."
    );
}
